#include "blocks/bias_chain.h"

#include <algorithm>
#include <cmath>

#include "mos/design_eqs.h"
#include "util/text.h"
#include "util/units.h"

namespace oasys::blocks {

const char* to_string(BiasStyle s) {
  return s == BiasStyle::kResistorReference ? "resistor-ref" : "ideal-ref";
}

BiasChainDesign design_bias_chain(const tech::Technology& t,
                                  const BiasChainSpec& spec) {
  BiasChainDesign d;
  d.style = spec.style;
  if (!(spec.iref > 0.0)) {
    d.log.error("bias-bad-spec", "iref must be positive");
    return d;
  }

  // Common overdrive: bounded by the tightest tap compliance budget.
  double vov = 0.25;
  for (const auto& tap : spec.taps) {
    if (tap.compliance_max <= 0.0) continue;
    const double vt =
        (tap.type == mos::MosType::kNmos ? t.nmos : t.pmos).vt0;
    const double budget =
        tap.cascode ? (tap.compliance_max * 0.9 - vt) / 2.0
                    : tap.compliance_max * 0.9;
    vov = std::min(vov, budget);
  }
  if (vov < kMinOverdrive) {
    d.log.error("bias-compliance",
                util::format("tap compliance budgets leave Vov = %.0f mV",
                             util::in_mv(vov)));
    return d;
  }
  d.vov = vov;

  // Common channel length: matching floor of 2 Lmin, raised if a tap
  // requires output resistance (lambda = lambda_l / L).
  double l = 2.0 * t.lmin;
  for (const auto& tap : spec.taps) {
    if (tap.rout_min <= 0.0 || tap.cascode) continue;
    const tech::MosParams& p =
        tap.type == mos::MosType::kNmos ? t.nmos : t.pmos;
    const double lambda_needed = 1.0 / (tap.rout_min * tap.iout);
    l = std::max(l, p.lambda_l / lambda_needed);
  }
  if (l > max_length(t)) {
    d.log.error("bias-rout",
                util::format("tap rout targets need L = %.1f um > limit",
                             util::in_um(l)));
    return d;
  }

  const bool any_cascode = std::any_of(
      spec.taps.begin(), spec.taps.end(),
      [](const BiasTap& tap) { return tap.cascode; });
  const bool any_pmos = std::any_of(
      spec.taps.begin(), spec.taps.end(),
      [](const BiasTap& tap) { return tap.type == mos::MosType::kPmos; });

  // Reference branch: NMOS diode MB1 (+ stacked diode MB1C for vbn2).
  const double w_ref = std::max(
      mos::width_for_current(t, t.nmos, l, spec.iref, vov), t.wmin);
  d.devices.push_back(
      {"MB1", mos::MosType::kNmos, w_ref, l, 1, spec.iref, vov});
  d.vbn = t.vss + mos::vgs_for(t.nmos, vov, 0.0);
  if (any_cascode) {
    // Cascode diodes at Lmin, same width policy as the mirror designer.
    const double wc = std::max(
        mos::width_for_current(t, t.nmos, t.lmin, spec.iref, vov), t.wmin);
    d.devices.push_back(
        {"MB1C", mos::MosType::kNmos, wc, t.lmin, 1, spec.iref, vov});
    d.has_cascode_stack = true;
    // Body effect raises the stacked diode's VGS.
    const double vsb_stack = d.vbn - t.vss;
    d.vbn2 = d.vbn + mos::vgs_for(t.nmos, vov, vsb_stack);
  }

  // vbp branch: MB2 mirrors iref into the PMOS diode MB3.
  if (any_pmos) {
    const double w2 = w_ref;  // same current, same vov, same length
    d.devices.push_back(
        {"MB2", mos::MosType::kNmos, w2, l, 1, spec.iref, vov});
    const double w3 = std::max(
        mos::width_for_current(t, t.pmos, l, spec.iref, vov), t.wmin);
    d.devices.push_back(
        {"MB3", mos::MosType::kPmos, w3, l, 1, spec.iref, vov});
    d.has_vbp_branch = true;
    d.vbp = t.vdd - mos::vgs_for(t.pmos, vov, 0.0);
  }

  // Taps: mirror outputs, width scaled by current ratio.
  d.tap_rout.reserve(spec.taps.size());
  for (const auto& tap : spec.taps) {
    if (!(tap.iout > 0.0)) {
      d.log.error("bias-bad-spec",
                  "tap '" + tap.role + "' current must be positive");
      return d;
    }
    const tech::MosParams& p =
        tap.type == mos::MosType::kNmos ? t.nmos : t.pmos;
    const double w =
        std::max(mos::width_for_current(t, p, l, tap.iout, vov), t.wmin);
    if (w > max_width(t)) {
      d.log.error("bias-width",
                  "tap '" + tap.role + "' width exceeds limit");
      return d;
    }
    d.devices.push_back({tap.role, tap.type, w, l, 1, tap.iout, vov});
    double rout = mos::rout_sat(p.lambda_at(l), tap.iout);
    if (tap.cascode) {
      if (tap.type == mos::MosType::kPmos) {
        d.log.error("bias-unsupported",
                    "cascoded PMOS taps are not implemented");
        return d;
      }
      const double wc = std::max(
          mos::width_for_current(t, p, t.lmin, tap.iout, vov), t.wmin);
      d.devices.push_back(
          {tap.role + "C", tap.type, wc, t.lmin, 1, tap.iout, vov});
      const double gm_c = mos::gm_from_id_vov(tap.iout, vov);
      const double ro_c = mos::rout_sat(p.lambda_at(t.lmin), tap.iout);
      rout = mos::rout_cascode(gm_c, ro_c, rout);
    }
    d.tap_rout.push_back(rout);
    // Small tolerance: the channel length was solved from this very bound,
    // so the achieved rout can sit at exact equality minus rounding.
    if (tap.rout_min > 0.0 && rout < tap.rout_min * 0.999) {
      d.log.error("bias-rout",
                  util::format("tap '%s' rout %.3g below required %.3g",
                               tap.role.c_str(), rout, tap.rout_min));
      return d;
    }
  }

  // Reference resistor drops the remaining supply span.
  if (spec.style == BiasStyle::kResistorReference) {
    const double v_stack = (d.has_cascode_stack ? d.vbn2 : d.vbn) - t.vss;
    const double v_drop = t.supply_span() - v_stack;
    if (v_drop < 0.5) {
      d.log.error("bias-headroom",
                  "supply span leaves no room for the reference resistor");
      return d;
    }
    d.rref = v_drop / spec.iref;
  }

  d.ibias_total = spec.iref * (d.has_vbp_branch ? 2.0 : 1.0);
  d.area = devices_area(t, d.devices);
  d.feasible = true;
  return d;
}

}  // namespace oasys::blocks
