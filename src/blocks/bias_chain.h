// Bias-chain designer.
//
// Produces the bias distribution for an op amp: a reference branch that
// establishes the NMOS bias gate voltage (vbn), an optional second branch
// for a PMOS bias gate (vbp), an optional stacked diode for cascoded
// current-source outputs (vbn2), and one sized mirror-output device per
// "tap" (tail source, output-stage sink, level-shifter pull-up).  All taps
// share the reference gate, so they are sized at a common overdrive and
// channel length and scale in width with their currents.
//
// Styles: kResistorReference drops the reference current across a resistor
// from the positive rail (fully passive, era-typical); kIdealReference
// uses an ideal current source (convenient for bench isolation).
//
// Device roles: "MB1" (+"MB1C" when a cascode tap exists), "MB2"/"MB3" for
// the vbp branch, plus each tap's own role ("M5", "M5C", "M7", "MLSB", ...).
#pragma once

#include "blocks/block_common.h"
#include "util/diagnostics.h"

namespace oasys::blocks {

enum class BiasStyle { kResistorReference, kIdealReference };

const char* to_string(BiasStyle s);

struct BiasTap {
  std::string role;        // device role label, e.g. "M5"
  mos::MosType type = mos::MosType::kNmos;  // kNmos sinks, kPmos sources
  double iout = 0.0;       // tap current [A]
  bool cascode = false;    // stack a cascode output (adds "<role>C")
  // Compliance budget: max voltage from the tap's rail the output node
  // needs [V]; 0 = unconstrained.
  double compliance_max = 0.0;
  double rout_min = 0.0;   // required output resistance [ohm]; 0 = none
};

struct BiasChainSpec {
  BiasStyle style = BiasStyle::kResistorReference;
  double iref = 0.0;                // reference branch current [A]
  std::vector<BiasTap> taps;
};

struct BiasChainDesign {
  bool feasible = false;
  BiasStyle style = BiasStyle::kResistorReference;
  std::vector<SizedDevice> devices;
  bool has_vbp_branch = false;   // MB2/MB3 present
  bool has_cascode_stack = false;  // MB1C present (vbn2 available)

  double rref = 0.0;   // reference resistor [ohm] (resistor style)
  double vbn = 0.0;    // predicted NMOS bias gate voltage [V, abs]
  double vbn2 = 0.0;   // predicted cascode bias voltage [V, abs]
  double vbp = 0.0;    // predicted PMOS bias gate voltage [V, abs]
  double ibias_total = 0.0;  // current burned in the chain itself [A]
  double vov = 0.0;    // common tap overdrive [V]
  double area = 0.0;
  // Predicted output resistance per tap (parallel to spec.taps).
  std::vector<double> tap_rout;

  util::DiagnosticLog log;
};

BiasChainDesign design_bias_chain(const tech::Technology& t,
                                  const BiasChainSpec& spec);

}  // namespace oasys::blocks
