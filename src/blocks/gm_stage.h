// Transconductance (second) stage designer: a common-source amplifier.
//
// Translates a gm target at a bias current into the sized gain device.  The
// cascode style stacks a common-gate device to raise the stage's own output
// resistance (at the cost of one Vdsat of output swing) — used only when
// cascoding the load mirror is not enough.
//
// Device roles: "<prefix>6" and, for cascode, "<prefix>6C".
#pragma once

#include "blocks/block_common.h"
#include "util/diagnostics.h"

namespace oasys::blocks {

enum class GmStageStyle { kCommonSource, kCascode };

const char* to_string(GmStageStyle s);

struct GmStageSpec {
  std::string role_prefix = "M";
  mos::MosType type = mos::MosType::kPmos;
  double gm = 0.0;       // transconductance target [S]
  double id = 0.0;       // stage bias current [A]
  double l = 0.0;        // channel length for the gain device [m]
  GmStageStyle style = GmStageStyle::kCommonSource;
  // Upper bound on the overdrive, from the output-swing budget [V].
  double vov_max = 0.0;
};

struct GmStageDesign {
  bool feasible = false;
  GmStageStyle style = GmStageStyle::kCommonSource;
  std::vector<SizedDevice> devices;

  double gm = 0.0;
  double vov = 0.0;
  double vgs = 0.0;        // |VGS| of the gain device [V]
  double rout = 0.0;       // stage output resistance (gain device side) [ohm]
  double cgs = 0.0;        // input capacitance (gate-source) [F]
  double swing_loss = 0.0; // Vdsat budget the stage consumes at the output [V]
  double area = 0.0;

  util::DiagnosticLog log;
};

GmStageDesign design_gm_stage(const tech::Technology& t,
                              const GmStageSpec& spec);

}  // namespace oasys::blocks
