// Shared types for sub-block designers.
//
// Every sub-block designer translates a block-level spec into sized devices
// (paper Level 2: "select design styles for each sub-block and then
// translate each sub-block specification into device interconnections and
// sizes").  The devices carry a `role` label that the op-amp netlist
// builder wires up; sub-blocks themselves are topology-agnostic and
// reusable, as the paper requires.
#pragma once

#include <string>
#include <vector>

#include "mos/level1.h"
#include "tech/technology.h"

namespace oasys::blocks {

struct SizedDevice {
  std::string role;  // e.g. "M1", "M3C"; unique within one op-amp design
  mos::MosType type = mos::MosType::kNmos;
  double w = 0.0;    // [m]
  double l = 0.0;    // [m]
  int m = 1;
  // Intended bias, kept for reports and consistency checks:
  double id = 0.0;   // [A]
  double vov = 0.0;  // [V]
};

// Total active area of a device list (gate + diffusions).
double devices_area(const tech::Technology& t,
                    const std::vector<SizedDevice>& devices);

// Designer-wide sizing heuristics (not process data): the longest channel a
// designer will use before declaring a gain target unreachable in a style
// (longer channels explode area and parasitic poles), and the smallest
// overdrive the square-law model is trusted at.
inline constexpr double kMaxLengthFactor = 4.0;   // Lmax = factor * Lmin
inline constexpr double kMinOverdrive = 0.08;     // [V]
inline constexpr double kMaxOverdrive = 1.0;      // [V]
inline constexpr double kMaxWidthFactor = 600.0;  // Wmax = factor * Wmin

double max_length(const tech::Technology& t);
double max_width(const tech::Technology& t);

}  // namespace oasys::blocks
