#include "blocks/block_common.h"

namespace oasys::blocks {

double devices_area(const tech::Technology& t,
                    const std::vector<SizedDevice>& devices) {
  double area = 0.0;
  for (const auto& d : devices) {
    area += t.device_area(d.w * d.m, d.l);
  }
  return area;
}

double max_length(const tech::Technology& t) {
  return kMaxLengthFactor * t.lmin;
}

double max_width(const tech::Technology& t) {
  return kMaxWidthFactor * t.wmin;
}

}  // namespace oasys::blocks
