// Level-shifter designer: a source follower that moves a signal's DC level
// by one |VGS| while presenting ~unity AC gain.
//
// The two-stage op-amp plan inserts one between the (cascoded) first-stage
// output and the second-stage input when their DC levels no longer match —
// the exact structural patch the paper reports for its test case C.  A
// PMOS follower (body tied to its own well/source, so no body effect)
// shifts the level *up*; an NMOS follower shifts it *down* (with body
// effect included in the shift prediction).
//
// Device roles: "<prefix>LS" (follower) — its bias current sink/source is
// provided by the bias chain as a mirror output.
#pragma once

#include "blocks/block_common.h"
#include "util/diagnostics.h"

namespace oasys::blocks {

struct LevelShifterSpec {
  std::string role_prefix = "M";
  // Direction is implied by device type: PMOS shifts up, NMOS shifts down.
  mos::MosType type = mos::MosType::kPmos;
  double shift = 0.0;      // required |level shift| [V]
  double cload = 0.0;      // capacitance at the follower output [F]
  double pole_min = 0.0;   // minimum follower pole (gm/Cload) [Hz]; 0 = none
  // For NMOS followers: estimated source-body reverse bias for the body
  // effect in the shift prediction [V].
  double vsb = 0.0;
};

struct LevelShifterDesign {
  bool feasible = false;
  std::vector<SizedDevice> devices;

  double shift = 0.0;     // predicted |VGS| shift achieved [V]
  double ibias = 0.0;     // follower bias current to be mirrored [A]
  double gm = 0.0;
  double pole = 0.0;      // gm / cload [Hz]
  double vov = 0.0;
  double area = 0.0;

  util::DiagnosticLog log;
};

LevelShifterDesign design_level_shifter(const tech::Technology& t,
                                        const LevelShifterSpec& spec);

}  // namespace oasys::blocks
