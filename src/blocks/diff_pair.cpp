#include "blocks/diff_pair.h"

#include <algorithm>
#include <cmath>

#include "mos/design_eqs.h"
#include "util/text.h"
#include "util/units.h"

namespace oasys::blocks {

const char* to_string(DiffPairStyle s) {
  return s == DiffPairStyle::kSimple ? "simple" : "cascode";
}

DiffPairDesign design_diff_pair(const tech::Technology& t,
                                const DiffPairSpec& spec) {
  DiffPairDesign d;
  d.style = spec.style;
  const tech::MosParams& p =
      spec.type == mos::MosType::kNmos ? t.nmos : t.pmos;

  if (!(spec.gm > 0.0) || !(spec.itail > 0.0) || !(spec.l > 0.0)) {
    d.log.error("diffpair-bad-spec", "gm, itail and l must be positive");
    return d;
  }
  const double id = spec.itail / 2.0;
  const double vov = 2.0 * id / spec.gm;  // gm = 2 Id / Vov
  if (vov < kMinOverdrive) {
    d.log.error("diffpair-gm",
                util::format("gm %.3g uS needs Vov = %.0f mV < %.0f mV: "
                             "square-law sizing untrustworthy; raise itail",
                             spec.gm * 1e6, util::in_mv(vov),
                             util::in_mv(kMinOverdrive)));
    return d;
  }
  if (vov > kMaxOverdrive) {
    d.log.error("diffpair-gm",
                util::format("overdrive %.2f V exceeds %.2f V: gm target "
                             "too small for this tail current",
                             vov, kMaxOverdrive));
    return d;
  }

  const double wl = mos::wl_for_gm(p.kp, spec.gm, id);
  const double w = std::max(wl * spec.l, t.wmin);
  if (w > max_width(t)) {
    d.log.error("diffpair-width",
                util::format("pair width %.0f um exceeds limit %.0f um",
                             util::in_um(w), util::in_um(max_width(t))));
    return d;
  }

  const std::string& pre = spec.role_prefix;
  d.devices.push_back({pre + "1", spec.type, w, spec.l, 1, id, vov});
  d.devices.push_back({pre + "2", spec.type, w, spec.l, 1, id, vov});

  const double lambda = p.lambda_at(spec.l);
  const double ro = mos::rout_sat(lambda, id);
  d.gm = spec.gm;
  d.vov = vov;
  d.vgs = mos::vgs_for(p, vov, std::max(spec.vsb, 0.0));
  d.rout_drain = ro;
  d.branch_headroom = vov;

  if (spec.style == DiffPairStyle::kCascode) {
    // Cascode at the same overdrive; minimum length is enough because the
    // resistance is already multiplied by gm_c * ro_c.
    const double lc = t.lmin;
    const double wc = std::max(
        mos::width_for_current(t, p, lc, id, vov), t.wmin);
    d.devices.push_back({pre + "1C", spec.type, wc, lc, 1, id, vov});
    d.devices.push_back({pre + "2C", spec.type, wc, lc, 1, id, vov});
    const double gm_c = mos::gm_from_id_vov(id, vov);
    const double ro_c = mos::rout_sat(p.lambda_at(lc), id);
    d.rout_drain = mos::rout_cascode(gm_c, ro_c, ro);
    // The cascode consumes one extra Vdsat of headroom; its gate bias needs
    // VT + 2 Vov above the tail, tracked by the op-amp plan.
    d.branch_headroom = 2.0 * vov;
  }

  d.cgs = mos::cgs_sat(t, p, {w, spec.l, 1});
  d.area = devices_area(t, d.devices);
  d.feasible = true;
  return d;
}

}  // namespace oasys::blocks
