// Successive-approximation A/D converter synthesis — the paper's Level-0
// example (Figure 1: Successive Approximation A/D -> comparator,
// sample-and-hold, D/A, successive-approximation register) and its
// longer-range goal ("data acquisition circuits").
//
// This block demonstrates the framework one level above the op amp: the
// Level-0 plan translates converter-level specifications (bits, sample
// rate, input range) into sub-block specifications — comparator resolution
// and propagation delay, capacitor-DAC unit size from kT/C noise and
// matching, sample-switch on-resistance from settling — then invokes the
// Level-1 comparator designer, which in turn invokes the Level-2 block
// designers.  The hierarchy is loose, exactly as the paper observes: the
// S/H here is one switch and a capacitor while the comparator is a dozen
// transistors.
//
// The SAR logic itself is digital and is modelled behaviourally in the
// verification harness (the paper: many transistors in an "ostensibly
// analog" converter belong to digital sections; the analog parts are the
// hard ones).
#pragma once

#include "synth/comparator.h"

namespace oasys::synth {

struct SarAdcSpec {
  std::string name;
  int bits = 0;              // resolution
  double sample_rate = 0.0;  // conversions per second [Hz]
  double vin_lo = 0.0;       // conversion range [V, absolute]
  double vin_hi = 0.0;
  double power_max = 0.0;    // [W]; 0 = unconstrained

  util::DiagnosticLog validate() const;
  std::string to_string() const;
};

struct SarAdcDesign {
  SarAdcSpec spec;
  bool feasible = false;

  // Sub-block: the synthesized comparator (Level 1 -> Level 2 reuse).
  ComparatorDesign comparator;

  // Capacitor-DAC sizing (binary-weighted array):
  double unit_cap = 0.0;    // [F]
  double total_cap = 0.0;   // 2^bits * unit_cap [F]
  // Sample-and-hold: maximum switch on-resistance for LSB/4 settling.
  double switch_ron_max = 0.0;  // [ohm]

  // Timing budget:
  double t_sample = 0.0;    // acquisition window [s]
  double t_bit = 0.0;       // per-bit decision window [s]
  double t_conv = 0.0;      // total conversion time [s]

  double lsb = 0.0;         // [V]
  double power = 0.0;       // comparator + DAC switching estimate [W]
  double area = 0.0;        // comparator + capacitor array [m^2]

  util::DiagnosticLog log;
  core::ExecutionTrace trace;
};

SarAdcDesign design_sar_adc(const tech::Technology& t,
                            const SarAdcSpec& spec,
                            const SynthOptions& opts = {});

// Behavioural-SAR verification: runs complete conversions against the
// *simulated* comparator (one operating-point decision per bit, plus one
// transient timing check), sweeping a ramp of input voltages and comparing
// the codes against ideal quantization.
struct MeasuredSarAdc {
  bool ok = false;
  std::string error;
  int points_tested = 0;
  int max_code_error_lsb = 0;   // worst |code - ideal| over the ramp
  bool monotonic = true;        // codes never decrease along the ramp
  double comparator_tprop = 0.0;  // measured decision time [s]
  bool timing_met = false;        // tprop fits the per-bit budget
};

MeasuredSarAdc measure_sar_adc(const SarAdcDesign& design,
                               const tech::Technology& t,
                               int ramp_points = 33);

}  // namespace oasys::synth
