#include "synth/ota_designer.h"

#include <algorithm>
#include <cmath>

#include "synth/designer_common.h"
#include "util/text.h"

namespace oasys::synth {

namespace {

using internal::OpAmpContext;
using util::format;

// Plan-step indices needed by rules are resolved by name at build time.

core::Plan<OpAmpContext> build_ota_plan() {
  core::Plan<OpAmpContext> plan("one-stage-ota");

  // ---- targets -----------------------------------------------------------
  plan.add_step("derive-targets", [](OpAmpContext& ctx) {
    const auto& s = ctx.spec;
    const double margin = ctx.get_or("target_margin", 1.15);
    ctx.set("gbw_t", std::max(s.gbw_min, util::khz(100.0)) * margin);
    ctx.set("sr_t", s.slew_min * margin);
    ctx.set("pm_t", s.pm_min_deg > 0.0 ? s.pm_min_deg + 4.0 : 49.0);
    ctx.out.style = OpAmpStyle::kOneStageOta;
    return core::StepStatus::success();
  });

  plan.add_step("tail-current", [](OpAmpContext& ctx) {
    // Slew of the OTA is Itail / CL.
    const double itail =
        std::max(ctx.get("sr_t") * ctx.spec.cload, util::ua(2.0));
    ctx.set("itail", itail);
    return core::StepStatus::success();
  });

  plan.add_step("input-gm", [](OpAmpContext& ctx) {
    // The OTA is load-compensated: GBW = gm1 / (2 pi CL).
    double gm1 = util::kTwoPi * ctx.get("gbw_t") * ctx.spec.cload;
    gm1 = std::max(gm1, ctx.get_or("gm1_floor", 0.0));
    // Cap the pair overdrive at 0.6 V by spending extra gm (harmless).
    gm1 = std::max(gm1, ctx.get("itail") / 0.6);
    ctx.set("gm1", gm1);
    return core::StepStatus::success();
  });

  plan.add_step("input-overdrive", [](OpAmpContext& ctx) {
    const double vov1 = ctx.get("itail") / ctx.get("gm1");
    if (vov1 < blocks::kMinOverdrive) {
      return core::StepStatus::fail(
          "vov1-floor",
          format("pair overdrive %.0f mV below the square-law floor",
                 util::in_mv(vov1)));
    }
    ctx.set("vov1", vov1);
    return core::StepStatus::success();
  });

  // ---- input common-mode range -------------------------------------------
  plan.add_step("icmr-high", [](OpAmpContext& ctx) {
    // M1 saturation at the top of the range: the drain of M1 sits one
    // load-branch drop below VDD; need vd1 >= vicm_hi - VT1.
    const double vov1 = ctx.get("vov1");
    if (!ctx.icmr_constrained()) {
      ctx.set("vov3_budget", 0.25);
      return core::StepStatus::success();
    }
    const double vgs1 =
        internal::input_pair_vgs(ctx.technology(), vov1, ctx.icmr_hi());
    const double vt1_hi = vgs1 - vov1;
    const int stack = ctx.out.stage1_cascode ? 2 : 1;
    // Budget for each |VSG| of the load branch.
    const double vsg_budget =
        (ctx.vdd() - ctx.icmr_hi() + vt1_hi) / stack;
    const double vov3 = vsg_budget - ctx.pmosp().vt0;
    if (vov3 < blocks::kMinOverdrive) {
      return core::StepStatus::fail(
          "icmr-high",
          format("common-mode top %.2f V leaves load overdrive %.0f mV",
                 ctx.icmr_hi(), util::in_mv(vov3)));
    }
    ctx.set("vov3_budget", std::min(vov3, 0.4));
    return core::StepStatus::success();
  });

  plan.add_step("icmr-low", [](OpAmpContext& ctx) {
    const double vov1 = ctx.get("vov1");
    if (!ctx.icmr_constrained()) {
      ctx.set("tail_compliance", 0.4);
      return core::StepStatus::success();
    }
    const double vgs1 =
        internal::input_pair_vgs(ctx.technology(), vov1, ctx.icmr_lo());
    const double budget = ctx.icmr_lo() - ctx.vss() - vgs1;
    const double need = ctx.out.tail_cascode
                            ? ctx.nmosp().vt0 + 2.0 * blocks::kMinOverdrive
                            : blocks::kMinOverdrive;
    if (budget < need) {
      return core::StepStatus::fail(
          "icmr-low",
          format("common-mode bottom %.2f V leaves %.0f mV for the tail",
                 ctx.icmr_lo(), util::in_mv(budget)));
    }
    ctx.set("tail_compliance", budget);
    return core::StepStatus::success();
  });

  // ---- gain --------------------------------------------------------------
  plan.add_step("gain-length", [](OpAmpContext& ctx) {
    const auto& t = ctx.technology();
    const double av_req = util::from_db20(ctx.spec.gain_min_db + 1.0);
    const double vov1 = ctx.get("vov1");
    const double id1 = ctx.get("itail") / 2.0;
    if (!ctx.out.stage1_cascode) {
      // Av = gm1 / ((lambda_n + lambda_p) * Id1) with lambda = lambda_l/L.
      const double lambda_tot = 2.0 / (av_req * vov1);
      double l = (t.nmos.lambda_l + t.pmos.lambda_l) / lambda_tot;
      l = std::max(l, t.lmin);
      if (l > blocks::max_length(t)) {
        return core::StepStatus::fail(
            "gain-shortfall",
            format("simple style needs L = %.1f um > %.1f um for %.0f dB",
                   util::in_um(l), util::in_um(blocks::max_length(t)),
                   ctx.spec.gain_min_db));
      }
      ctx.set("l1", l);
      ctx.set("l_load", l);
    } else {
      // Telescopic: cascode multiplication makes minimum length plenty;
      // verify the achievable gain from the cascode equations.
      const double l = t.lmin;
      const double gm1 = ctx.get("gm1");
      const double gm_c = mos::gm_from_id_vov(id1, vov1);
      const double ro_n = mos::rout_sat(t.nmos.lambda_at(l), id1);
      const double r_down = mos::rout_cascode(gm_c, ro_n, ro_n);
      const double vov3 = ctx.get("vov3_budget");
      const double gm_cp = mos::gm_from_id_vov(id1, vov3);
      const double ro_p = mos::rout_sat(t.pmos.lambda_at(l), id1);
      const double r_up = mos::rout_cascode(gm_cp, ro_p, ro_p);
      const double av = gm1 * mos::parallel(r_up, r_down);
      if (av < av_req) {
        return core::StepStatus::fail(
            "gain-unreachable",
            format("telescopic style reaches %.0f dB < required %.0f dB",
                   util::db20(av), ctx.spec.gain_min_db));
      }
      ctx.set("l1", l);
      ctx.set("l_load", l);
    }
    return core::StepStatus::success();
  });

  // ---- sub-block design ----------------------------------------------------
  plan.add_step("design-pair", [](OpAmpContext& ctx) {
    blocks::DiffPairSpec ps;
    ps.role_prefix = "M";
    ps.type = mos::MosType::kNmos;
    ps.gm = ctx.get("gm1");
    ps.itail = ctx.get("itail");
    ps.l = ctx.get("l1");
    ps.style = ctx.out.stage1_cascode ? blocks::DiffPairStyle::kCascode
                                      : blocks::DiffPairStyle::kSimple;
    const double vgs1 = internal::input_pair_vgs(
        ctx.technology(), ctx.get("vov1"), ctx.icmr_mid());
    ps.vsb = ctx.icmr_mid() - vgs1 - ctx.vss();
    ctx.set("vgs1", vgs1);
    ctx.pair = blocks::design_diff_pair(ctx.technology(), ps);
    if (!ctx.pair.feasible) {
      return core::StepStatus::fail("pair-infeasible",
                                    ctx.pair.log.to_string());
    }
    return core::StepStatus::success();
  });

  plan.add_step("design-load-mirror", [](OpAmpContext& ctx) {
    const double id1 = ctx.get("itail") / 2.0;
    blocks::CurrentMirrorSpec ms;
    ms.role_prefix = "ML";
    ms.type = mos::MosType::kPmos;
    ms.iin = id1;
    ms.iout = id1;
    // Each side of the output resistance must carry half the burden.
    const double av_req = util::from_db20(ctx.spec.gain_min_db + 1.0);
    ms.rout_min = ctx.out.stage1_cascode
                      ? 0.0  // checked jointly in gain-length
                      : 2.0 * av_req / ctx.get("gm1");
    // Compliance: the smaller of the ICMR-derived |VSG| budget and the
    // swing-high budget (output must rise to mid + swing_pos).
    const double swing_budget =
        ctx.vdd() - (ctx.mid() + ctx.spec.swing_pos);
    double compliance = swing_budget;
    if (ctx.out.stage1_cascode) {
      // Cascode mirror output needs VT + 2 Vov of headroom.
      compliance = std::min(compliance,
                            ctx.pmosp().vt0 + 2.0 * ctx.get("vov3_budget"));
    } else {
      compliance = std::min(compliance, ctx.get("vov3_budget") / 0.9);
    }
    ms.compliance_max = compliance;
    // Nominal |Vds| at the output device when the output sits at mid-rail,
    // for the systematic-offset prediction.
    ms.vds_out_nominal = ctx.vdd() - ctx.mid();
    const blocks::MirrorStyle style = ctx.out.stage1_cascode
                                          ? blocks::MirrorStyle::kCascode
                                          : blocks::MirrorStyle::kSimple;
    ctx.load = blocks::design_mirror_style(ctx.technology(), ms, style);
    if (!ctx.load.feasible) {
      const bool swing_limited =
          swing_budget < (ctx.out.stage1_cascode
                              ? ctx.pmosp().vt0 + 2.0 * blocks::kMinOverdrive
                              : blocks::kMinOverdrive);
      return core::StepStatus::fail(
          swing_limited ? "swing-gain-conflict" : "load-infeasible",
          ctx.load.log.to_string());
    }
    return core::StepStatus::success();
  });

  plan.add_step("design-bias", [](OpAmpContext& ctx) {
    blocks::BiasChainSpec bs;
    bs.style = ctx.opts.bias_style;
    bs.iref = std::clamp(ctx.get("itail"), util::ua(5.0), ctx.opts.iref);
    blocks::BiasTap tail;
    tail.role = "M5";
    tail.type = mos::MosType::kNmos;
    tail.iout = ctx.get("itail");
    tail.cascode = ctx.out.tail_cascode;
    tail.compliance_max = ctx.get("tail_compliance");
    bs.taps.push_back(tail);
    ctx.bias = blocks::design_bias_chain(ctx.technology(), bs);
    if (!ctx.bias.feasible) {
      return core::StepStatus::fail("bias-infeasible",
                                    ctx.bias.log.to_string());
    }
    ctx.out.iref = bs.iref;
    return core::StepStatus::success();
  });

  // ---- verification against the spec --------------------------------------
  plan.add_step("offset-check", [](OpAmpContext& ctx) {
    // The single-ended mirror load leaves an inherent systematic offset:
    // the diode side sits at |VSG3| while the output side sees the output
    // voltage, and channel-length modulation turns that Vds difference
    // into a current error referred to the input as error*Id/gm1.
    const double id1 = ctx.get("itail") / 2.0;
    const double offset =
        std::abs(ctx.load.current_error_frac) * id1 / ctx.get("gm1");
    ctx.set("offset_pred", offset);
    if (ctx.spec.offset_max > 0.0 && offset > ctx.spec.offset_max) {
      return core::StepStatus::fail(
          "offset-inherent",
          format("systematic offset %.1f mV exceeds %.1f mV",
                 util::in_mv(offset), util::in_mv(ctx.spec.offset_max)));
    }
    return core::StepStatus::success();
  });

  plan.add_step("swing-check", [](OpAmpContext& ctx) {
    const double out_hi = ctx.vdd() - ctx.load.compliance;
    // M2 leaves saturation when the output falls below vicm - VT1.
    const double vgs1 = ctx.get("vgs1");
    const double vt1 = vgs1 - ctx.get("vov1");
    double out_lo = ctx.icmr_mid() - vt1;
    if (ctx.out.stage1_cascode) {
      // The input cascode keeps M2's drain pinned; the output floor is the
      // cascode's own saturation limit instead.
      out_lo = ctx.icmr_mid() - vgs1 + 2.0 * ctx.get("vov1") +
               blocks::kMinOverdrive;
    }
    ctx.set("swing_pos_pred", out_hi - ctx.mid());
    ctx.set("swing_neg_pred", ctx.mid() - out_lo);
    if (ctx.spec.swing_pos > 0.0 &&
        out_hi - ctx.mid() < ctx.spec.swing_pos) {
      return core::StepStatus::fail(
          "swing-high",
          format("output reaches +%.2f V < required +%.2f V",
                 out_hi - ctx.mid(), ctx.spec.swing_pos));
    }
    if (ctx.spec.swing_neg > 0.0 &&
        ctx.mid() - out_lo < ctx.spec.swing_neg) {
      return core::StepStatus::fail(
          "swing-low",
          format("output reaches -%.2f V, required -%.2f V",
                 ctx.mid() - out_lo, ctx.spec.swing_neg));
    }
    return core::StepStatus::success();
  });

  plan.add_step("pm-check", [](OpAmpContext& ctx) {
    const auto& t = ctx.technology();
    const double gbw = ctx.get("gbw_t");
    // Mirror pole: the diode-connected gate node of the load.
    const double id1 = ctx.get("itail") / 2.0;
    const double gm3 = mos::gm_from_id_vov(id1, ctx.load.vov);
    const blocks::SizedDevice& mdev = ctx.load.devices.front();
    const double cgs3 =
        mos::cgs_sat(t, t.pmos, {mdev.w, mdev.l, mdev.m});
    const double p_mirror = gm3 / (util::kTwoPi * 2.0 * cgs3);
    double pm = 90.0 - internal::pole_phase_deg(gbw, p_mirror);
    if (ctx.out.stage1_cascode) {
      // Cascode node poles (gm_c/Cgs_c), one per stack.
      const double gm_c = mos::gm_from_id_vov(id1, ctx.get("vov1"));
      const blocks::SizedDevice* cdev = nullptr;
      for (const auto& d : ctx.pair.devices) {
        if (d.role == "M1C") cdev = &d;
      }
      if (cdev != nullptr) {
        const double cgs_c =
            mos::cgs_sat(t, t.nmos, {cdev->w, cdev->l, cdev->m});
        pm -= 2.0 * internal::pole_phase_deg(
                        gbw, gm_c / (util::kTwoPi * cgs_c));
      }
    }
    ctx.set("pm_pred", pm);
    if (ctx.spec.pm_min_deg > 0.0 && pm < ctx.spec.pm_min_deg) {
      return core::StepStatus::fail(
          "pm-shortfall", format("predicted PM %.0f deg < spec %.0f deg",
                                 pm, ctx.spec.pm_min_deg));
    }
    return core::StepStatus::success();
  });

  plan.add_step("noise-check", [](OpAmpContext& ctx) {
    // Input-referred thermal noise: both pair devices plus the mirror
    // load's contribution scaled by (gm3/gm1)^2 referred through gm1.
    const double gm1 = ctx.get("gm1");
    const double id1 = ctx.get("itail") / 2.0;
    const double gm3 = mos::gm_from_id_vov(id1, ctx.load.vov);
    const double four_kt = 4.0 * util::kBoltzmann * util::kRoomTempK;
    const double sv =
        2.0 * four_kt * (2.0 / 3.0) / gm1 * (1.0 + gm3 / gm1);
    ctx.set("noise_pred", std::sqrt(sv));
    if (ctx.spec.noise_max > 0.0 && std::sqrt(sv) > ctx.spec.noise_max) {
      return core::StepStatus::fail(
          "noise-over",
          format("input noise %.0f nV/rtHz exceeds %.0f nV/rtHz",
                 std::sqrt(sv) * 1e9, ctx.spec.noise_max * 1e9));
    }
    return core::StepStatus::success();
  });

  plan.add_step("power-area-check", [](OpAmpContext& ctx) {
    const double power =
        (ctx.get("itail") + ctx.bias.ibias_total) *
        ctx.technology().supply_span();
    ctx.set("power_pred", power);
    if (ctx.spec.power_max > 0.0 && power > ctx.spec.power_max) {
      return core::StepStatus::fail(
          "power-over", format("power %.2f mW exceeds %.2f mW",
                               util::in_mw(power),
                               util::in_mw(ctx.spec.power_max)));
    }
    internal::collect_devices(ctx);
    const double area =
        blocks::devices_area(ctx.technology(), ctx.out.devices);
    ctx.set("area_pred", area);
    if (ctx.spec.area_max > 0.0 && area > ctx.spec.area_max) {
      return core::StepStatus::fail(
          "area-over", format("area %.0f um^2 exceeds %.0f um^2",
                              util::in_um2(area),
                              util::in_um2(ctx.spec.area_max)));
    }
    return core::StepStatus::success();
  });

  plan.add_step("finalize", [](OpAmpContext& ctx) {
    const auto& t = ctx.technology();
    OpAmpDesign& out = ctx.out;
    out.itail = ctx.get("itail");
    out.rref = ctx.bias.rref;
    out.ideal_bias_reference =
        ctx.bias.style == blocks::BiasStyle::kIdealReference;

    if (out.stage1_cascode) {
      // Gate bias for the telescopic input cascodes (ideal source; see
      // DESIGN.md substitutions).
      const double vtail = ctx.icmr_mid() - ctx.get("vgs1");
      const double vd1 = vtail + ctx.get("vov1") + 0.10;
      const double vsb_c = std::max(vd1 - ctx.vss(), 0.0);
      out.vb_cascode_n =
          vd1 + mos::vgs_for(t.nmos, ctx.get("vov1"), vsb_c);
    }

    core::OpAmpPerformance& p = out.predicted;
    const double r_out =
        mos::parallel(ctx.pair.rout_drain, ctx.load.rout);
    p.gain_db = util::db20(ctx.get("gm1") * r_out);
    p.gbw = ctx.get("gm1") / (util::kTwoPi * ctx.spec.cload);
    p.pm_deg = ctx.get("pm_pred");
    p.slew = out.itail / ctx.spec.cload;
    p.swing_pos = ctx.get("swing_pos_pred");
    p.swing_neg = ctx.get("swing_neg_pred");
    p.offset = ctx.get("offset_pred");
    p.icmr_lo = ctx.vss() + ctx.get("vgs1") +
                (out.tail_cascode
                     ? ctx.bias.vov * 2.0 + t.nmos.vt0
                     : ctx.bias.vov);
    p.icmr_hi = ctx.vdd() -
                (out.stage1_cascode ? 2.0 : 1.0) *
                    (t.pmos.vt0 + ctx.load.vov) +
                (ctx.get("vgs1") - ctx.get("vov1"));
    p.power = ctx.get("power_pred");
    p.area = ctx.get("area_pred");
    // Rough common-mode rejection estimate: Acm ~ 1/(2 gm3 Rtail).
    const double id1 = out.itail / 2.0;
    const double gm3 = mos::gm_from_id_vov(id1, ctx.load.vov);
    const double rtail =
        ctx.bias.tap_rout.empty() ? 0.0 : ctx.bias.tap_rout.front();
    if (rtail > 0.0) {
      p.cmrr_db = util::db20(ctx.get("gm1") * r_out * 2.0 * gm3 * rtail);
    }
    p.psrr_db = p.gain_db;  // first-order: supply gain ~ 1
    p.noise_in = ctx.get_or("noise_pred", 0.0);
    out.feasible = true;
    return core::StepStatus::success();
  });

  // ======================= patch rules =====================================
  const std::size_t idx_targets = plan.step_index("derive-targets");
  const std::size_t idx_input_gm = plan.step_index("input-gm");
  const std::size_t idx_icmr_hi = plan.step_index("icmr-high");
  const std::size_t idx_gain = plan.step_index("gain-length");

  // Slew fixed the tail current but the gm target needs a smaller
  // overdrive than the square law trusts: raise the tail current.
  plan.add_rule("raise-itail-for-gm",
                [](OpAmpContext& ctx, const core::StepFailure& f)
                    -> std::optional<core::PatchAction> {
                  if (f.code != "vov1-floor") return std::nullopt;
                  if (ctx.bump("raise-itail") > 2) return std::nullopt;
                  const double itail =
                      ctx.get("gm1") * blocks::kMinOverdrive * 1.05;
                  ctx.set("itail", itail);
                  return core::PatchAction::retry_step(
                      format("raised tail current to %.1f uA",
                             util::in_ua(itail)));
                });

  // Gain (or the mirror pole implied by a long load) is out of reach for
  // the simple style: switch the whole input stage to the cascode
  // (telescopic) configuration and redo the stage design.
  plan.add_rule(
      "cascode-input-stage",
      [idx_icmr_hi](OpAmpContext& ctx, const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        const bool gain_issue =
            f.code == "gain-shortfall" || f.code == "pm-shortfall";
        if (!gain_issue || ctx.out.stage1_cascode) return std::nullopt;
        if (f.code == "pm-shortfall" &&
            ctx.get_or("l_load", 0.0) <= 1.5 * ctx.technology().lmin) {
          // Short-channel load already; cascoding won't move the mirror
          // pole, let another rule handle it.
          return std::nullopt;
        }
        ctx.out.stage1_cascode = true;
        return core::PatchAction::restart_at(
            idx_icmr_hi,
            "cascoded the input stage (telescopic) for gain/phase");
      });

  // Phase margin still short: trade the GBW design margin away before
  // giving up.
  plan.add_rule("shave-gbw-margin",
                [idx_targets](OpAmpContext& ctx, const core::StepFailure& f)
                    -> std::optional<core::PatchAction> {
                  if (f.code != "pm-shortfall") return std::nullopt;
                  if (ctx.bump("shave-gbw") > 1) return std::nullopt;
                  ctx.set("target_margin", 1.0);
                  return core::PatchAction::restart_at(
                      idx_targets, "dropped the GBW design margin");
                });

  // Ship a first-cut design when PM is close (paper case C behaviour).
  plan.add_rule(
      "accept-first-cut-pm",
      [](OpAmpContext& ctx, const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        if (f.code != "pm-shortfall") return std::nullopt;
        const double pm = ctx.get_or("pm_pred", 0.0);
        if (pm < ctx.spec.pm_min_deg - ctx.opts.pm_grace_deg) {
          return std::nullopt;
        }
        internal::record_soft_violation(
            ctx, "pm",
            format("shipping first-cut design with PM %.0f deg vs spec "
                   "%.0f deg",
                   pm, ctx.spec.pm_min_deg));
        return core::PatchAction::proceed("accepted first-cut PM");
      });

  // Offset too large with a long-channel simple load: lengthening reduces
  // lambda and with it the Vds-mismatch error.
  plan.add_rule(
      "lengthen-load-for-offset",
      [idx_gain](OpAmpContext& ctx, const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        if (f.code != "offset-inherent" || ctx.out.stage1_cascode) {
          return std::nullopt;
        }
        if (ctx.bump("lengthen-load") > 2) return std::nullopt;
        // Re-run gain-length with a stiffer gain ask, which lengthens L.
        ctx.set("gm1_floor", ctx.get("gm1"));
        const double l_now = ctx.get_or("l_load", ctx.technology().lmin);
        const double l_new = l_now * 1.6;
        if (l_new > blocks::max_length(ctx.technology())) {
          return std::nullopt;
        }
        ctx.set("l1", l_new);
        ctx.set("l_load", l_new);
        return core::PatchAction::restart_at(
            idx_gain + 1, format("lengthened channels to %.1f um to shrink "
                                 "the mirror Vds-mismatch offset",
                                 util::in_um(l_new)));
      });

  // Noise over budget: a bigger input gm is the only real lever (noise
  // power scales as 1/gm1); the slew-driven tail current rises with it.
  plan.add_rule(
      "raise-gm1-for-noise",
      [idx_input_gm](OpAmpContext& ctx, const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        if (f.code != "noise-over") return std::nullopt;
        if (ctx.bump("gm1-noise") > 3) return std::nullopt;
        const double ratio =
            ctx.get("noise_pred") / ctx.spec.noise_max;
        ctx.set("gm1_floor", ctx.get("gm1") * ratio * ratio * 1.1);
        return core::PatchAction::restart_at(
            idx_input_gm, "raised the input gm to push thermal noise down");
      });

  // Power over budget: trim the design margins once.
  plan.add_rule("trim-margins-for-power",
                [idx_targets](OpAmpContext& ctx, const core::StepFailure& f)
                    -> std::optional<core::PatchAction> {
                  if (f.code != "power-over") return std::nullopt;
                  if (ctx.bump("trim-power") > 1) return std::nullopt;
                  ctx.set("target_margin", 1.0);
                  return core::PatchAction::restart_at(
                      idx_targets, "trimmed design margins to meet power");
                });

  return plan;
}

}  // namespace

OpAmpDesign design_one_stage_ota(const tech::Technology& t,
                                 const core::OpAmpSpec& spec,
                                 const SynthOptions& opts) {
  OpAmpContext ctx(t, spec, opts);
  static const core::Plan<OpAmpContext> plan = build_ota_plan();
  core::ExecutorOptions exec;
  exec.rules_enabled = opts.rules_enabled;
  exec.max_patches = opts.max_patches;
  ctx.out.trace = core::execute_plan(plan, ctx, exec);
  ctx.out.feasible = ctx.out.trace.success && ctx.out.feasible;
  ctx.out.log.append(ctx.log());
  if (!ctx.out.trace.success) {
    ctx.out.log.error("style-infeasible", ctx.out.trace.abort_reason);
  }
  return std::move(ctx.out);
}

}  // namespace oasys::synth
