#include "synth/report.h"

#include <sstream>

#include "util/table.h"
#include "util/text.h"
#include "util/units.h"

namespace oasys::synth {

using util::format;

std::string device_table(const OpAmpDesign& design) {
  util::Table table({"device", "type", "W (um)", "L (um)", "Id (uA)",
                     "Vov (mV)"});
  for (const auto& d : design.devices) {
    table.add_row({d.role, mos::to_string(d.type),
                   format("%.1f", util::in_um(d.w * d.m)),
                   format("%.1f", util::in_um(d.l)),
                   format("%.2f", util::in_ua(d.id)),
                   format("%.0f", util::in_mv(d.vov))});
  }
  std::ostringstream os;
  os << table.to_string();
  if (design.cc > 0.0) {
    os << format("CC   = %.2f pF (compensation)\n", util::in_pf(design.cc));
  }
  if (design.rref > 0.0) {
    os << format("RREF = %.1f kohm (bias reference)\n", design.rref / 1e3);
  }
  if (design.vb_cascode_n) {
    os << format("VBCN = %.3f V (ideal cascode gate bias)\n",
                 *design.vb_cascode_n);
  }
  if (design.vb_cascode_p) {
    os << format("VBCP = %.3f V (ideal cascode gate bias)\n",
                 *design.vb_cascode_p);
  }
  return os.str();
}

std::string design_summary(const OpAmpDesign& design) {
  std::ostringstream os;
  os << "style: " << design.style_name()
     << (design.feasible ? "" : "  [INFEASIBLE]") << "\n";
  os << format("  devices: %zu, Itail = %.1f uA", design.devices.size(),
               util::in_ua(design.itail));
  if (design.i2 > 0.0) {
    os << format(", I2 = %.1f uA", util::in_ua(design.i2));
  }
  if (design.cc > 0.0) os << format(", Cc = %.2f pF", util::in_pf(design.cc));
  os << format(", area = %.0f um^2\n", util::in_um2(design.predicted.area));
  if (design.soft_violations > 0) {
    os << format("  first-cut: %d spec axis(es) knowingly missed\n",
                 design.soft_violations);
  }
  return os.str();
}

namespace {

struct AxisRow {
  const char* axis;
  const char* unit;
  bool constrained;
  double spec;
  double predicted;
  double measured;
};

std::vector<AxisRow> axis_rows(const core::OpAmpSpec& s,
                               const core::OpAmpPerformance& p,
                               const core::OpAmpPerformance* m) {
  auto mv = [&](double core::OpAmpPerformance::* field) {
    return m != nullptr ? (*m).*field : 0.0;
  };
  return {
      {"gain (dB)", ">=", s.gain_min_db > 0, s.gain_min_db, p.gain_db,
       mv(&core::OpAmpPerformance::gain_db)},
      {"GBW (MHz)", ">=", s.gbw_min > 0, util::in_mhz(s.gbw_min),
       util::in_mhz(p.gbw), util::in_mhz(mv(&core::OpAmpPerformance::gbw))},
      {"PM (deg)", ">=", s.pm_min_deg > 0, s.pm_min_deg, p.pm_deg,
       mv(&core::OpAmpPerformance::pm_deg)},
      {"slew (V/us)", ">=", s.slew_min > 0, util::in_v_per_us(s.slew_min),
       util::in_v_per_us(p.slew),
       util::in_v_per_us(mv(&core::OpAmpPerformance::slew))},
      {"swing+ (V)", ">=", s.swing_pos > 0, s.swing_pos, p.swing_pos,
       mv(&core::OpAmpPerformance::swing_pos)},
      {"swing- (V)", ">=", s.swing_neg > 0, s.swing_neg, p.swing_neg,
       mv(&core::OpAmpPerformance::swing_neg)},
      {"offset (mV)", "<=", s.offset_max > 0, util::in_mv(s.offset_max),
       util::in_mv(p.offset),
       util::in_mv(mv(&core::OpAmpPerformance::offset))},
      {"ICMR lo (V)", "<=", s.icmr_lo != 0 || s.icmr_hi != 0, s.icmr_lo,
       p.icmr_lo, mv(&core::OpAmpPerformance::icmr_lo)},
      {"ICMR hi (V)", ">=", s.icmr_lo != 0 || s.icmr_hi != 0, s.icmr_hi,
       p.icmr_hi, mv(&core::OpAmpPerformance::icmr_hi)},
      {"power (mW)", "<=", s.power_max > 0, util::in_mw(s.power_max),
       util::in_mw(p.power), util::in_mw(mv(&core::OpAmpPerformance::power))},
      {"area (um^2)", "<=", s.area_max > 0, util::in_um2(s.area_max),
       util::in_um2(p.area), util::in_um2(mv(&core::OpAmpPerformance::area))},
      {"CMRR (dB)", ">=", s.cmrr_min_db > 0, s.cmrr_min_db, p.cmrr_db,
       mv(&core::OpAmpPerformance::cmrr_db)},
      {"PSRR (dB)", ">=", s.psrr_min_db > 0, s.psrr_min_db, p.psrr_db,
       mv(&core::OpAmpPerformance::psrr_db)},
      {"noise (nV/rtHz)", "<=", s.noise_max > 0, s.noise_max * 1e9,
       p.noise_in * 1e9, mv(&core::OpAmpPerformance::noise_in) * 1e9},
  };
}

}  // namespace

std::string comparison_table(const OpAmpDesign& design,
                             const MeasuredOpAmp* measured) {
  std::vector<std::string> headers = {"axis", "", "spec", "predicted"};
  if (measured != nullptr) headers.push_back("simulated");
  util::Table table(headers);
  const core::OpAmpPerformance* mp =
      measured != nullptr ? &measured->perf : nullptr;
  for (const auto& row : axis_rows(design.spec, design.predicted, mp)) {
    std::vector<std::string> cells = {
        row.axis, row.constrained ? row.unit : "--",
        row.constrained ? format("%.2f", row.spec) : std::string("-"),
        format("%.2f", row.predicted)};
    if (measured != nullptr) cells.push_back(format("%.2f", row.measured));
    table.add_row(std::move(cells));
  }
  return table.to_string();
}

std::string synthesis_report(const SynthesisResult& result) {
  std::ostringstream os;
  os << result.spec.to_string();
  os << "style selection (breadth-first, area-biased):\n";
  os << result.selection.summary;
  const OpAmpDesign* best = result.best();
  if (best == nullptr) {
    os << "no feasible design.\n";
    for (const auto& c : result.candidates) {
      os << "--- " << to_string(c.style) << " failure narrative ---\n";
      os << c.trace.to_string();
    }
    return os.str();
  }
  os << "\nselected design:\n" << design_summary(*best);
  os << device_table(*best);
  os << "\nplan execution (" << best->trace.steps_executed << " steps, "
     << best->trace.rules_fired << " rule firings):\n";
  os << best->trace.to_string();
  return os.str();
}

}  // namespace oasys::synth
