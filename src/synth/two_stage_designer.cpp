#include "synth/two_stage_designer.h"

#include <algorithm>
#include <cmath>

#include "synth/designer_common.h"
#include "util/text.h"

namespace oasys::synth {

namespace {

using internal::OpAmpContext;
using util::format;

// Phase-budget split between the second pole and the RHP zero when sizing
// the compensation network.
constexpr double kP2PhaseShare = 0.75;
constexpr double kMinCc = 0.5e-12;

// Phase-budget reserve for the non-dominant parasitic poles.  A cascoded
// first stage brings extra poles (input cascodes, level shifter), so the
// compensation step reserves more when the structure has grown.
double phase_reserve_deg(const OpAmpContext& ctx) {
  return ctx.out.stage1_cascode ? 16.0 : 6.0;
}

// Stage-1 output DC level at the balance point (both branches matched):
// one or two diode drops below VDD depending on the load-mirror style.
double stage1_balance_level(const OpAmpContext& ctx) {
  const double vsg3 = ctx.pmosp().vt0 + ctx.load.vov;
  const int stack = ctx.out.stage1_cascode ? 2 : 1;
  return ctx.vdd() - stack * vsg3;
}

core::Plan<OpAmpContext> build_two_stage_plan() {
  core::Plan<OpAmpContext> plan("two-stage");

  // ---- targets ------------------------------------------------------------
  plan.add_step("derive-targets", [](OpAmpContext& ctx) {
    const auto& s = ctx.spec;
    const double margin = ctx.get_or("target_margin", 1.15);
    ctx.set("gbw_t", std::max(s.gbw_min, util::khz(100.0)) * margin);
    ctx.set("sr_t", s.slew_min * margin);
    ctx.set("pm_t", s.pm_min_deg > 0.0 ? s.pm_min_deg + 4.0 : 49.0);
    ctx.out.style = OpAmpStyle::kTwoStage;
    return core::StepStatus::success();
  });

  // ---- compensation (one level above the sub-blocks, per the paper) -------
  plan.add_step("compensation", [](OpAmpContext& ctx) {
    const double pm_t = std::min(ctx.get("pm_t"), 80.0);
    const double budget_deg =
        std::max(90.0 - pm_t - phase_reserve_deg(ctx), 8.0);
    const double phi_p2 = util::rad(budget_deg * kP2PhaseShare);
    const double phi_z = util::rad(budget_deg * (1.0 - kP2PhaseShare));
    // p2 = gm6/CL at gbw/tan(phi_p2); z = gm6/Cc at gbw/tan(phi_z).
    const double wt = util::kTwoPi * ctx.get("gbw_t");
    const double gm6_scale = ctx.get_or("gm6_boost", 1.0);
    const double gm6 = gm6_scale * wt * ctx.spec.cload / std::tan(phi_p2);
    // Cc is not scaled with the gm6 boost: boosting gm6 then moves both
    // the output pole (gm6/CL) and the RHP zero (gm6/Cc) outward.
    const double cc = std::max(
        ctx.spec.cload * std::tan(phi_z) / std::tan(phi_p2), kMinCc);
    ctx.set("gm6_req", gm6);
    ctx.set("cc", cc);
    ctx.log().info("compensation",
                   format("Cc = %.2f pF, gm6 target = %.0f uS",
                          util::in_pf(cc), gm6 * 1e6));
    return core::StepStatus::success();
  });

  plan.add_step("first-stage-current", [](OpAmpContext& ctx) {
    // Internal slew: I5 = SR * Cc.
    const double i5 = std::max(1.1 * ctx.get("sr_t") * ctx.get("cc"),
                               util::ua(2.0));
    ctx.set("i5", i5);
    return core::StepStatus::success();
  });

  plan.add_step("input-gm", [](OpAmpContext& ctx) {
    // GBW = gm1 / (2 pi Cc).
    double gm1 = util::kTwoPi * ctx.get("gbw_t") * ctx.get("cc");
    gm1 = std::max(gm1, ctx.get("i5") / 0.6);  // overdrive cap at 0.6 V
    gm1 = std::max(gm1, ctx.get_or("gm1_floor", 0.0));  // noise rule hook
    ctx.set("gm1", gm1);
    const double vov1 = ctx.get("i5") / gm1;
    if (vov1 < blocks::kMinOverdrive) {
      return core::StepStatus::fail(
          "vov1-floor",
          format("pair overdrive %.0f mV below the square-law floor",
                 util::in_mv(vov1)));
    }
    ctx.set("vov1", vov1);
    return core::StepStatus::success();
  });

  // ---- gain partition (the paper's sqrt heuristic + rule-skewing) ----------
  plan.add_step("gain-partition", [](OpAmpContext& ctx) {
    const double av_total = util::from_db20(ctx.spec.gain_min_db + 1.0);
    const double skew = ctx.get_or("partition_skew", 0.5);
    const double av1_t = std::pow(av_total, skew);
    ctx.set("av_total", av_total);
    ctx.set("av1_t", av1_t);
    ctx.log().info("partition",
                   format("gain partition: stage1 %.1f dB, stage2 %.1f dB "
                          "(skew %.2f)",
                          util::db20(av1_t), util::db20(av_total / av1_t),
                          skew));
    return core::StepStatus::success();
  });

  plan.add_step("icmr", [](OpAmpContext& ctx) {
    const double vov1 = ctx.get("vov1");
    // Top of the range: load-branch |VSG| budget (x1 or x2 diode drops).
    if (!ctx.icmr_constrained()) {
      ctx.set("vov3_budget", 0.25);
      ctx.set("tail_compliance", 0.4);
      return core::StepStatus::success();
    }
    const double vgs1_hi =
        internal::input_pair_vgs(ctx.technology(), vov1, ctx.icmr_hi());
    const int stack = ctx.out.stage1_cascode ? 2 : 1;
    const double vsg_budget =
        (ctx.vdd() - ctx.icmr_hi() + (vgs1_hi - vov1)) / stack;
    const double vov3 = std::min(vsg_budget - ctx.pmosp().vt0, 0.4);
    if (vov3 < blocks::kMinOverdrive) {
      return core::StepStatus::fail(
          "icmr-high",
          format("common-mode top %.2f V leaves load overdrive %.0f mV",
                 ctx.icmr_hi(), util::in_mv(vov3)));
    }
    // Bottom of the range: tail compliance.
    const double vgs1_lo =
        internal::input_pair_vgs(ctx.technology(), vov1, ctx.icmr_lo());
    const double tail_budget = ctx.icmr_lo() - ctx.vss() - vgs1_lo;
    const double tail_need =
        ctx.out.tail_cascode
            ? ctx.nmosp().vt0 + 2.0 * blocks::kMinOverdrive
            : blocks::kMinOverdrive;
    if (tail_budget < tail_need) {
      return core::StepStatus::fail(
          "icmr-low",
          format("common-mode bottom %.2f V leaves %.0f mV for the tail",
                 ctx.icmr_lo(), util::in_mv(tail_budget)));
    }
    const double vov3_floor = ctx.get_or("vov3_floor", 0.0);
    ctx.set("vov3_budget", std::max(vov3, vov3_floor));
    if (vov3_floor > vov3) {
      ctx.log().warning("icmr-tight",
                        "load overdrive floor (level-shifter headroom) "
                        "narrows the specified common-mode top");
    }
    ctx.set("tail_compliance", tail_budget);
    return core::StepStatus::success();
  });

  // ---- stage 1 -------------------------------------------------------------
  plan.add_step("stage1-length", [](OpAmpContext& ctx) {
    const auto& t = ctx.technology();
    const double vov1 = ctx.get("vov1");
    if (!ctx.out.stage1_cascode) {
      const double lambda_tot = 2.0 / (ctx.get("av1_t") * vov1);
      double l = std::max((t.nmos.lambda_l + t.pmos.lambda_l) / lambda_tot,
                          t.lmin);
      if (l > blocks::max_length(t)) {
        return core::StepStatus::fail(
            "stage1-gain",
            format("stage-1 gain %.1f dB needs L = %.1f um > limit",
                   util::db20(ctx.get("av1_t")), util::in_um(l)));
      }
      ctx.set("l1", l);
    } else {
      ctx.set("l1", t.lmin);
    }
    return core::StepStatus::success();
  });

  plan.add_step("design-pair", [](OpAmpContext& ctx) {
    blocks::DiffPairSpec ps;
    ps.role_prefix = "M";
    ps.type = mos::MosType::kNmos;
    ps.gm = ctx.get("gm1");
    ps.itail = ctx.get("i5");
    ps.l = ctx.get("l1");
    ps.style = ctx.out.stage1_cascode ? blocks::DiffPairStyle::kCascode
                                      : blocks::DiffPairStyle::kSimple;
    const double vgs1 = internal::input_pair_vgs(
        ctx.technology(), ctx.get("vov1"), ctx.icmr_mid());
    ctx.set("vgs1", vgs1);
    ps.vsb = ctx.icmr_mid() - vgs1 - ctx.vss();
    ctx.pair = blocks::design_diff_pair(ctx.technology(), ps);
    if (!ctx.pair.feasible) {
      return core::StepStatus::fail("pair-infeasible",
                                    ctx.pair.log.to_string());
    }
    return core::StepStatus::success();
  });

  plan.add_step("design-load-mirror", [](OpAmpContext& ctx) {
    const double id1 = ctx.get("i5") / 2.0;
    blocks::CurrentMirrorSpec ms;
    ms.role_prefix = "ML";
    ms.type = mos::MosType::kPmos;
    ms.iin = id1;
    ms.iout = id1;
    ms.rout_min = 2.0 * ctx.get("av1_t") / ctx.get("gm1");
    ms.compliance_max =
        ctx.out.stage1_cascode
            ? ctx.pmosp().vt0 + 2.0 * ctx.get("vov3_budget")
            : ctx.get("vov3_budget") / 0.9;
    ms.vds_out_nominal = ctx.pmosp().vt0 + ctx.get("vov3_budget");
    const blocks::MirrorStyle style = ctx.out.stage1_cascode
                                          ? blocks::MirrorStyle::kCascode
                                          : blocks::MirrorStyle::kSimple;
    ctx.load = blocks::design_mirror_style(ctx.technology(), ms, style);
    if (!ctx.load.feasible) {
      return core::StepStatus::fail("load-infeasible",
                                    ctx.load.log.to_string());
    }
    const double av1 =
        ctx.get("gm1") * mos::parallel(ctx.pair.rout_drain, ctx.load.rout);
    ctx.set("av1", av1);
    if (av1 < ctx.get("av1_t") * 0.95) {
      return core::StepStatus::fail(
          "stage1-gain", format("achieved stage-1 gain %.1f dB < target "
                                "%.1f dB",
                                util::db20(av1),
                                util::db20(ctx.get("av1_t"))));
    }
    return core::StepStatus::success();
  });

  // ---- stage 2 -------------------------------------------------------------
  plan.add_step("stage2-translate", [](OpAmpContext& ctx) {
    const double gm6 = ctx.get("gm6_req");
    // Swing-high budget bounds the gain device's overdrive (an extra Vdsat
    // when the gain device itself is cascoded).
    const double headroom =
        ctx.vdd() - (ctx.mid() + ctx.spec.swing_pos);
    const double split = ctx.out.stage2_cascode_gm ? 2.0 : 1.0;
    double vov6_max =
        ctx.spec.swing_pos > 0.0 ? 0.9 * headroom / split : 0.45;
    vov6_max = std::min(vov6_max, 0.45);
    if (vov6_max < blocks::kMinOverdrive) {
      return core::StepStatus::fail(
          "swing-high",
          format("swing +%.2f V leaves %.0f mV for the gain device",
                 ctx.spec.swing_pos, util::in_mv(vov6_max * split)));
    }
    // Level-shifter compatibility may cap vov6 (set by its patch rule).
    const double vov6_cap = ctx.get_or("vov6_cap", vov6_max);
    double vov6 = std::min({vov6_max, vov6_cap, 0.4});
    double i6 = mos::id_for_gm_vov(gm6, vov6);
    // Output slew: the second stage must also move Cc + CL.
    const double i6_slew =
        1.05 * ctx.get("sr_t") * (ctx.spec.cload + ctx.get("cc"));
    if (i6 < i6_slew) {
      i6 = i6_slew;
      vov6 = 2.0 * i6 / gm6;
      if (vov6 > vov6_max || vov6 > vov6_cap) {
        return core::StepStatus::fail(
            "slew-swing-conflict",
            format("slew needs %.0f uA pushing Vov6 to %.2f V beyond the "
                   "budget %.2f V",
                   util::in_ua(i6), vov6, std::min(vov6_max, vov6_cap)));
      }
    }
    ctx.set("vov6", vov6);
    ctx.set("i6", i6);
    ctx.set("av2_req", ctx.get("av_total") / ctx.get("av1"));
    return core::StepStatus::success();
  });

  plan.add_step("stage2-length", [](OpAmpContext& ctx) {
    const auto& t = ctx.technology();
    const double i6 = ctx.get("i6");
    const double gm6 = ctx.get("gm6_req");
    const double r2_needed = ctx.get("av2_req") / gm6;
    double l6;
    if (!ctx.out.stage2_cascode_load && !ctx.out.stage2_cascode_gm) {
      // R2 = 1 / ((lambda6 + lambda7) * I6).
      const double lambda_tot = 1.0 / (r2_needed * i6);
      l6 = std::max((t.pmos.lambda_l + t.nmos.lambda_l) / lambda_tot,
                    t.lmin);
    } else if (!ctx.out.stage2_cascode_gm) {
      // Sink cascoded: R2 ~ ro6 alone.
      const double lambda6 = 1.0 / (r2_needed * i6);
      l6 = std::max(t.pmos.lambda_l / lambda6, t.lmin);
    } else {
      // Both cascoded: check achievable at minimum length.
      l6 = t.lmin;
      const double vov6 = ctx.get("vov6");
      const double gm_c = mos::gm_from_id_vov(i6, vov6);
      const double ro6 = mos::rout_sat(t.pmos.lambda_at(l6), i6);
      const double r_up = mos::rout_cascode(gm_c, ro6, ro6);
      if (r_up < r2_needed * 2.0) {
        return core::StepStatus::fail(
            "gain-unreachable",
            format("stage-2 gain %.1f dB unreachable even fully cascoded",
                   util::db20(ctx.get("av2_req"))));
      }
    }
    if (l6 > blocks::max_length(t)) {
      return core::StepStatus::fail(
          "stage2-gain",
          format("stage-2 gain %.1f dB needs L = %.1f um > limit",
                 util::db20(ctx.get("av2_req")), util::in_um(l6)));
    }
    ctx.set("l6", l6);
    return core::StepStatus::success();
  });

  plan.add_step("design-gm-stage", [](OpAmpContext& ctx) {
    blocks::GmStageSpec gs;
    gs.role_prefix = "M";
    gs.type = mos::MosType::kPmos;
    gs.gm = ctx.get("gm6_req");
    gs.id = ctx.get("i6");
    gs.l = ctx.get("l6");
    gs.style = ctx.out.stage2_cascode_gm ? blocks::GmStageStyle::kCascode
                                         : blocks::GmStageStyle::kCommonSource;
    gs.vov_max = ctx.get("vov6") * 1.02;
    ctx.gm2 = blocks::design_gm_stage(ctx.technology(), gs);
    if (!ctx.gm2.feasible) {
      return core::StepStatus::fail("gmstage-infeasible",
                                    ctx.gm2.log.to_string());
    }
    return core::StepStatus::success();
  });

  // ---- inter-stage DC matching / level shifter ------------------------------
  plan.add_step("level-match", [](OpAmpContext& ctx) {
    ctx.ls = blocks::LevelShifterDesign{};  // reset on re-entry
    ctx.out.has_level_shifter = false;
    ctx.out.ils = 0.0;
    const double x1 = stage1_balance_level(ctx);
    const double gate6 = ctx.vdd() - ctx.gm2.vgs;
    const double delta = gate6 - x1;  // >0: must shift x1 up
    ctx.set("level_delta", delta);
    // The stage-1 output may sit away from its balance level only within
    // the load's saturation window: one |VT| upward before the mirror's
    // output device (or its cascode) triodes, and down to the input
    // branch's own saturation floor.  Inside the window the mismatch is
    // absorbed as systematic offset; outside it the level shifter is
    // structurally required (the paper's case C move).
    const double kSatMargin = 0.05;
    const double slack_up = ctx.pmosp().vt0 - kSatMargin;
    const double x1_min = ctx.icmr_mid() - ctx.get("vgs1") +
                          ctx.pair.branch_headroom + kSatMargin;
    if (delta <= slack_up && gate6 >= x1_min) {
      const double offset_from_delta = std::abs(delta) / ctx.get("av1");
      const double offset_budget = ctx.spec.offset_max > 0.0
                                       ? 0.5 * ctx.spec.offset_max
                                       : util::mv(5.0);
      if (offset_from_delta <= offset_budget) {
        ctx.set("offset_pred", offset_from_delta);
        return core::StepStatus::success();
      }
    }
    if (delta <= 0.0) {
      // Stage-1 output above the required gate level: an NMOS follower
      // would shift down; not needed for this topology family because the
      // simple-load level sits within a Vov of the target.
      return core::StepStatus::fail(
          "level-mismatch-down",
          format("stage-1 output %.2f V above second-stage gate", -delta));
    }
    blocks::LevelShifterSpec lss;
    lss.role_prefix = "M";
    lss.type = mos::MosType::kPmos;  // shifts up; body tied to source
    lss.shift = delta;
    lss.cload = ctx.gm2.cgs;
    lss.pole_min = 8.0 * ctx.get("gbw_t");
    ctx.ls = blocks::design_level_shifter(ctx.technology(), lss);
    if (!ctx.ls.feasible) {
      return core::StepStatus::fail(
          "level-shift-infeasible",
          format("needed shift %.2f V: %s", delta,
                 ctx.ls.log.to_string().c_str()));
    }
    ctx.out.has_level_shifter = true;
    ctx.out.ils = ctx.ls.ibias;
    const double residual = std::abs(ctx.ls.shift - delta);
    ctx.set("offset_pred", residual / ctx.get("av1"));
    ctx.log().info("level-shifter",
                   format("inserted PMOS follower shifting +%.2f V "
                          "(%.1f uA)",
                          ctx.ls.shift, util::in_ua(ctx.ls.ibias)));
    return core::StepStatus::success();
  });

  plan.add_step("offset-check", [](OpAmpContext& ctx) {
    const double offset = ctx.get("offset_pred");
    if (ctx.spec.offset_max > 0.0 && offset > ctx.spec.offset_max) {
      return core::StepStatus::fail(
          "offset", format("systematic offset %.2f mV exceeds %.2f mV",
                           util::in_mv(offset),
                           util::in_mv(ctx.spec.offset_max)));
    }
    return core::StepStatus::success();
  });

  // ---- bias and output swing -----------------------------------------------
  plan.add_step("consider-tail-cascode", [](OpAmpContext& ctx) {
    // Aggressive designs benefit from a cascoded tail (the paper's case C
    // cascodes the input current bias); do it opportunistically when the
    // first stage is already cascoded and the ICMR budget allows.
    if (ctx.out.stage1_cascode && !ctx.out.tail_cascode) {
      const double budget = ctx.get("tail_compliance");
      if (budget >= ctx.nmosp().vt0 + 2.0 * blocks::kMinOverdrive + 0.05) {
        ctx.out.tail_cascode = true;
        ctx.log().info("tail-cascode",
                       "cascoded the tail current source (input bias)");
      }
    }
    return core::StepStatus::success();
  });

  plan.add_step("design-bias", [](OpAmpContext& ctx) {
    blocks::BiasChainSpec bs;
    bs.style = ctx.opts.bias_style;
    bs.iref = std::clamp(ctx.get("i5"), util::ua(5.0), ctx.opts.iref);
    blocks::BiasTap tail;
    tail.role = "M5";
    tail.type = mos::MosType::kNmos;
    tail.iout = ctx.get("i5");
    tail.cascode = ctx.out.tail_cascode;
    tail.compliance_max = ctx.get("tail_compliance");
    bs.taps.push_back(tail);

    blocks::BiasTap sink;
    sink.role = "M7";
    sink.type = mos::MosType::kNmos;
    sink.iout = ctx.get("i6");
    sink.cascode = ctx.out.stage2_cascode_load;
    // Swing-low budget: the output must fall to mid - swing_neg.
    sink.compliance_max =
        ctx.spec.swing_neg > 0.0
            ? (ctx.mid() - ctx.spec.swing_neg) - ctx.vss()
            : 0.0;
    // When the sink is the cascoded "output load mirror", it must carry
    // its share of the stage-2 resistance.
    if (ctx.out.stage2_cascode_load) {
      sink.rout_min = 0.0;  // cascode rout is far beyond ro6 already
    } else {
      sink.rout_min = 2.0 * ctx.get("av2_req") / ctx.get("gm6_req");
    }
    bs.taps.push_back(sink);

    if (ctx.out.has_level_shifter) {
      blocks::BiasTap ls_src;
      ls_src.role = "MLSB";
      ls_src.type = mos::MosType::kPmos;
      ls_src.iout = ctx.ls.ibias;
      ls_src.compliance_max = 0.0;
      bs.taps.push_back(ls_src);
    }
    ctx.bias = blocks::design_bias_chain(ctx.technology(), bs);
    if (!ctx.bias.feasible) {
      const bool swing_issue =
          ctx.bias.log.contains_code("bias-compliance") &&
          ctx.spec.swing_neg > 0.0;
      return core::StepStatus::fail(
          swing_issue ? "swing-low" : "bias-infeasible",
          ctx.bias.log.to_string());
    }
    ctx.out.iref = bs.iref;
    return core::StepStatus::success();
  });

  // ---- phase margin ----------------------------------------------------------
  plan.add_step("pm-check", [](OpAmpContext& ctx) {
    const auto& t = ctx.technology();
    const double gbw = ctx.get("gbw_t");
    const double gm6 = ctx.gm2.gm;
    // Output pole and RHP zero of the Miller stage.
    const double p2 = gm6 / (util::kTwoPi * ctx.spec.cload);
    const double z = gm6 / (util::kTwoPi * ctx.get("cc"));
    double pm = 90.0 - internal::pole_phase_deg(gbw, p2) -
                internal::pole_phase_deg(gbw, z);
    // Load-mirror pole.
    const double id1 = ctx.get("i5") / 2.0;
    const double gm3 = mos::gm_from_id_vov(id1, ctx.load.vov);
    const blocks::SizedDevice& mdev = ctx.load.devices.front();
    const double cgs3 = mos::cgs_sat(t, t.pmos, {mdev.w, mdev.l, mdev.m});
    const double p_mirror = gm3 / (util::kTwoPi * 2.0 * cgs3);
    pm -= internal::pole_phase_deg(gbw, p_mirror);
    ctx.set("p_mirror", p_mirror);
    // Input-cascode pole when telescopic.
    if (ctx.out.stage1_cascode) {
      const double gm_c = mos::gm_from_id_vov(id1, ctx.get("vov1"));
      for (const auto& d : ctx.pair.devices) {
        if (d.role == "M1C") {
          const double cgs_c = mos::cgs_sat(t, t.nmos, {d.w, d.l, d.m});
          pm -= internal::pole_phase_deg(
              gbw, gm_c / (util::kTwoPi * cgs_c));
        }
      }
    }
    // Level-shifter pole.
    if (ctx.out.has_level_shifter && ctx.ls.pole > 0.0) {
      pm -= internal::pole_phase_deg(gbw, ctx.ls.pole);
    }
    ctx.set("pm_pred", pm);
    if (ctx.spec.pm_min_deg > 0.0 && pm < ctx.spec.pm_min_deg) {
      return core::StepStatus::fail(
          "pm-shortfall", format("predicted PM %.0f deg < spec %.0f deg",
                                 pm, ctx.spec.pm_min_deg));
    }
    return core::StepStatus::success();
  });

  plan.add_step("noise-check", [](OpAmpContext& ctx) {
    // Noise is set by the first stage (the second stage's contribution is
    // divided by the stage-1 gain): pair plus mirror load.
    const double gm1 = ctx.get("gm1");
    const double id1 = ctx.get("i5") / 2.0;
    const double gm3 = mos::gm_from_id_vov(id1, ctx.load.vov);
    const double four_kt = 4.0 * util::kBoltzmann * util::kRoomTempK;
    const double sv =
        2.0 * four_kt * (2.0 / 3.0) / gm1 * (1.0 + gm3 / gm1);
    ctx.set("noise_pred", std::sqrt(sv));
    if (ctx.spec.noise_max > 0.0 && std::sqrt(sv) > ctx.spec.noise_max) {
      return core::StepStatus::fail(
          "noise-over",
          format("input noise %.0f nV/rtHz exceeds %.0f nV/rtHz",
                 std::sqrt(sv) * 1e9, ctx.spec.noise_max * 1e9));
    }
    return core::StepStatus::success();
  });

  // ---- budgets and assembly ---------------------------------------------------
  plan.add_step("power-area-check", [](OpAmpContext& ctx) {
    const double supply_current = ctx.get("i5") + ctx.get("i6") +
                                  ctx.out.ils + ctx.bias.ibias_total;
    const double power = supply_current * ctx.technology().supply_span();
    ctx.set("power_pred", power);
    if (ctx.spec.power_max > 0.0 && power > ctx.spec.power_max) {
      return core::StepStatus::fail(
          "power-over", format("power %.2f mW exceeds %.2f mW",
                               util::in_mw(power),
                               util::in_mw(ctx.spec.power_max)));
    }
    internal::collect_devices(ctx);
    const double area =
        blocks::devices_area(ctx.technology(), ctx.out.devices) +
        ctx.technology().capacitor_area(ctx.get("cc"));
    ctx.set("area_pred", area);
    if (ctx.spec.area_max > 0.0 && area > ctx.spec.area_max) {
      return core::StepStatus::fail(
          "area-over", format("area %.0f um^2 exceeds %.0f um^2",
                              util::in_um2(area),
                              util::in_um2(ctx.spec.area_max)));
    }
    return core::StepStatus::success();
  });

  plan.add_step("finalize", [](OpAmpContext& ctx) {
    const auto& t = ctx.technology();
    OpAmpDesign& out = ctx.out;
    out.cc = ctx.get("cc");
    out.itail = ctx.get("i5");
    out.i2 = ctx.get("i6");
    out.rref = ctx.bias.rref;
    out.ideal_bias_reference =
        ctx.bias.style == blocks::BiasStyle::kIdealReference;

    if (out.stage1_cascode) {
      const double vtail = ctx.icmr_mid() - ctx.get("vgs1");
      const double vd1 = vtail + ctx.get("vov1") + 0.10;
      const double vsb_c = std::max(vd1 - ctx.vss(), 0.0);
      out.vb_cascode_n =
          vd1 + mos::vgs_for(t.nmos, ctx.get("vov1"), vsb_c);
    }
    if (out.stage2_cascode_gm) {
      // Gate bias for the stacked PMOS gain cascode: one Vdsat plus margin
      // below the gain device's source follower point.
      const double vov6 = ctx.get("vov6");
      const double n6 = ctx.vdd() - vov6 - 0.05;
      out.vb_cascode_p = n6 - mos::vgs_for(t.pmos, vov6, 0.0);
    }

    core::OpAmpPerformance& p = out.predicted;
    const double av1 = ctx.get("av1");
    // Stage 2: gain device in parallel with the sink tap.
    const double r_sink = ctx.bias.tap_rout.size() > 1
                              ? ctx.bias.tap_rout[1]
                              : ctx.gm2.rout;
    const double av2 = ctx.gm2.gm * mos::parallel(ctx.gm2.rout, r_sink);
    p.gain_db = util::db20(av1 * av2);
    p.gbw = ctx.get("gm1") / (util::kTwoPi * out.cc);
    p.pm_deg = ctx.get("pm_pred");
    p.slew = std::min(ctx.get("i5") / out.cc,
                      ctx.get("i6") / (ctx.spec.cload + out.cc));
    // Output swing: gain-device Vdsat up, sink compliance down.
    p.swing_pos = ctx.vdd() - ctx.gm2.swing_loss - ctx.mid();
    const double sink_compliance =
        out.stage2_cascode_load ? t.nmos.vt0 + 2.0 * ctx.bias.vov
                                : ctx.bias.vov;
    p.swing_neg = ctx.mid() - (ctx.vss() + sink_compliance);
    p.offset = ctx.get("offset_pred");
    p.icmr_lo = ctx.vss() + ctx.get("vgs1") +
                (out.tail_cascode ? t.nmos.vt0 + 2.0 * ctx.bias.vov
                                  : ctx.bias.vov);
    const int stack = out.stage1_cascode ? 2 : 1;
    p.icmr_hi = ctx.vdd() - stack * (t.pmos.vt0 + ctx.load.vov) +
                (ctx.get("vgs1") - ctx.get("vov1"));
    p.power = ctx.get("power_pred");
    p.area = ctx.get("area_pred");
    const double gm3 = mos::gm_from_id_vov(ctx.get("i5") / 2.0,
                                           ctx.load.vov);
    const double rtail =
        ctx.bias.tap_rout.empty() ? 0.0 : ctx.bias.tap_rout.front();
    if (rtail > 0.0) {
      p.cmrr_db = util::db20(av1 * av2 * 2.0 * gm3 * rtail /
                             std::max(av2, 1.0));
    }
    p.psrr_db = p.gain_db;
    p.noise_in = ctx.get_or("noise_pred", 0.0);
    out.feasible = true;
    return core::StepStatus::success();
  });

  // ========================== patch rules ===================================
  const std::size_t idx_targets = plan.step_index("derive-targets");
  const std::size_t idx_comp = plan.step_index("compensation");
  const std::size_t idx_input_gm = plan.step_index("input-gm");
  const std::size_t idx_stage2 = plan.step_index("stage2-translate");
  const std::size_t idx_icmr = plan.step_index("icmr");

  // Slew set I5 too low for the gm1 overdrive floor: raise I5.
  plan.add_rule("raise-i5-for-gm",
                [](OpAmpContext& ctx, const core::StepFailure& f)
                    -> std::optional<core::PatchAction> {
                  if (f.code != "vov1-floor") return std::nullopt;
                  if (ctx.bump("raise-i5") > 2) return std::nullopt;
                  const double i5 =
                      ctx.get("gm1") * blocks::kMinOverdrive * 1.05;
                  ctx.set("i5", i5);
                  return core::PatchAction::retry_step(format(
                      "raised I5 to %.1f uA", util::in_ua(i5)));
                });

  // The paper's flagship rule: a stage's gain target is unreachable in its
  // current configuration -> cascode the first stage, skew the partition
  // toward it, and restart from the partition step.
  plan.add_rule(
      "cascode-stage1",
      [idx_comp](OpAmpContext& ctx, const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        if (f.code != "stage1-gain" || ctx.out.stage1_cascode) {
          return std::nullopt;
        }
        ctx.out.stage1_cascode = true;
        ctx.set("partition_skew", 0.62);
        // Restart from compensation: the new structure carries more
        // parasitic poles, so the phase budget must be re-reserved.
        return core::PatchAction::restart_at(
            idx_comp,
            "cascoded stage 1 and skewed the gain partition toward it");
      });

  // Phase margin killed by a long-channel load mirror: cascoding the first
  // stage gets the gain from stacking instead of channel length, restoring
  // the mirror pole.  Checked before the gm6 boost because gm6 cannot move
  // the mirror pole.
  plan.add_rule(
      "cascode-stage1-for-pm",
      [idx_comp](OpAmpContext& ctx, const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        if (f.code != "pm-shortfall" || ctx.out.stage1_cascode) {
          return std::nullopt;
        }
        const double p_mirror = ctx.get_or("p_mirror", 0.0);
        const double gbw = ctx.get("gbw_t");
        // Only when the mirror pole steals more phase than a gm6 boost can
        // buy back; moderate theft is left to the boost rule so ordinary
        // specs keep the simple (cheaper) first stage.
        if (p_mirror <= 0.0 ||
            internal::pole_phase_deg(gbw, p_mirror) < 18.0) {
          return std::nullopt;
        }
        ctx.out.stage1_cascode = true;
        ctx.set("partition_skew", 0.62);
        return core::PatchAction::restart_at(
            idx_comp,
            "cascoded stage 1: short-channel load restores the mirror pole");
      });

  // Stage-2 gain shortfall: first cascode the output sink ("output load
  // mirror" in the paper's words), then the gain device itself.
  plan.add_rule(
      "cascode-stage2-load",
      [idx_stage2](OpAmpContext& ctx, const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        if (f.code != "stage2-gain" || ctx.out.stage2_cascode_load) {
          return std::nullopt;
        }
        ctx.out.stage2_cascode_load = true;
        return core::PatchAction::restart_at(
            idx_stage2, "cascoded the output load mirror");
      });
  plan.add_rule(
      "cascode-stage2-gm",
      [idx_stage2](OpAmpContext& ctx, const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        if (f.code != "stage2-gain" || !ctx.out.stage2_cascode_load ||
            ctx.out.stage2_cascode_gm) {
          return std::nullopt;
        }
        ctx.out.stage2_cascode_gm = true;
        return core::PatchAction::restart_at(
            idx_stage2, "cascoded the stage-2 gain device");
      });

  // Level shifter can't realize the needed shift because the required
  // |VSG| is too close to VT: raise the load-mirror overdrive (one diode
  // each) to enlarge the shift, or cap Vov6 to shrink the gate target.
  plan.add_rule(
      "retune-for-level-shift",
      [idx_icmr](OpAmpContext& ctx, const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        if (f.code != "level-shift-infeasible") return std::nullopt;
        if (ctx.bump("retune-ls") > 2) return std::nullopt;
        const double vov3 = ctx.get("vov3_budget");
        ctx.set("vov3_floor", vov3 + 0.07);
        ctx.set("vov6_cap", std::max(ctx.get("vov6") - 0.05,
                                     blocks::kMinOverdrive));
        return core::PatchAction::restart_at(
            idx_icmr, "raised load overdrive / capped Vov6 to make the "
                      "level shift realizable");
      });

  // Slew forces more stage-2 current than the swing budget allows at the
  // current gm6: boost gm6 so the overdrive falls back into budget.
  plan.add_rule(
      "raise-gm6-for-slew",
      [idx_stage2](OpAmpContext& ctx, const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        if (f.code != "slew-swing-conflict") return std::nullopt;
        if (ctx.bump("gm6-slew") > 3) return std::nullopt;
        ctx.set("gm6_req", ctx.get("gm6_req") * 1.4);
        return core::PatchAction::restart_at(
            idx_stage2, "raised gm6 to hold Vov6 within the swing budget");
      });

  // Phase margin short with healthy mirror pole: boost gm6 (moves both the
  // output pole and the RHP zero out), re-running stage 2.
  plan.add_rule(
      "boost-gm6-for-pm",
      [idx_comp](OpAmpContext& ctx, const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        if (f.code != "pm-shortfall") return std::nullopt;
        if (ctx.bump("gm6-boost-count") > 3) return std::nullopt;
        ctx.set("gm6_boost", ctx.get_or("gm6_boost", 1.0) * 1.3);
        return core::PatchAction::restart_at(
            idx_comp, "boosted gm6 to push the output pole and zero out");
      });

  // First-cut acceptance for PM (paper case C ships 32 vs 45 deg).
  plan.add_rule(
      "accept-first-cut-pm",
      [](OpAmpContext& ctx, const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        if (f.code != "pm-shortfall") return std::nullopt;
        const double pm = ctx.get_or("pm_pred", 0.0);
        if (pm < ctx.spec.pm_min_deg - ctx.opts.pm_grace_deg) {
          return std::nullopt;
        }
        internal::record_soft_violation(
            ctx, "pm",
            format("shipping first-cut design with PM %.0f deg vs spec "
                   "%.0f deg",
                   pm, ctx.spec.pm_min_deg));
        return core::PatchAction::proceed("accepted first-cut PM");
      });

  // Noise over budget: raise the input gm (GBW margin simply grows).
  plan.add_rule(
      "raise-gm1-for-noise",
      [idx_input_gm](OpAmpContext& ctx, const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        if (f.code != "noise-over") return std::nullopt;
        if (ctx.bump("gm1-noise") > 3) return std::nullopt;
        const double ratio = ctx.get("noise_pred") / ctx.spec.noise_max;
        ctx.set("gm1_floor", ctx.get("gm1") * ratio * ratio * 1.1);
        return core::PatchAction::restart_at(
            idx_input_gm, "raised the input gm for noise");
      });

  // Power over budget: drop the design margins once and replan.
  plan.add_rule("trim-margins-for-power",
                [idx_targets](OpAmpContext& ctx, const core::StepFailure& f)
                    -> std::optional<core::PatchAction> {
                  if (f.code != "power-over") return std::nullopt;
                  if (ctx.bump("trim-power") > 1) return std::nullopt;
                  ctx.set("target_margin", 1.0);
                  return core::PatchAction::restart_at(
                      idx_targets, "trimmed design margins to meet power");
                });

  return plan;
}

}  // namespace

OpAmpDesign design_two_stage(const tech::Technology& t,
                             const core::OpAmpSpec& spec,
                             const SynthOptions& opts) {
  OpAmpContext ctx(t, spec, opts);
  static const core::Plan<OpAmpContext> plan = build_two_stage_plan();
  core::ExecutorOptions exec;
  exec.rules_enabled = opts.rules_enabled;
  exec.max_patches = opts.max_patches;
  ctx.out.trace = core::execute_plan(plan, ctx, exec);
  ctx.out.feasible = ctx.out.trace.success && ctx.out.feasible;
  ctx.out.log.append(ctx.log());
  if (!ctx.out.trace.success) {
    ctx.out.log.error("style-infeasible", ctx.out.trace.abort_reason);
  }
  return std::move(ctx.out);
}

}  // namespace oasys::synth
