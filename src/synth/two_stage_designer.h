// Two-stage (Miller-compensated) op-amp designer.
//
// Topology template (paper Figure 4): NMOS differential pair with PMOS
// current-mirror load, PMOS common-source second stage with an NMOS
// current-sink load, Miller compensation capacitor across the second
// stage, and a bias chain.  Structural patch rules can cascode the first
// stage (telescopic input + cascoded load mirror), cascode the output sink
// mirror, cascode the gain device, cascode the tail source, and insert a
// level shifter between the stages — the exact repertoire the paper
// reports for its test case C.  Compensation is designed in this plan, one
// hierarchy level above the sub-blocks, as the paper prescribes.
#pragma once

#include "core/spec.h"
#include "synth/opamp_design.h"
#include "tech/technology.h"

namespace oasys::synth {

OpAmpDesign design_two_stage(const tech::Technology& t,
                             const core::OpAmpSpec& spec,
                             const SynthOptions& opts = {});

}  // namespace oasys::synth
