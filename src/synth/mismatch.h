// Random-mismatch (matching) analysis.
//
// The paper's Section 2.1 singles out matching as the process constraint
// that dominates analog design ("a particular design style ... may require
// components with precisely matched electrical characteristics").  This
// module quantifies it for synthesized op amps:
//
//  * an analytic prediction of the one-sigma random input offset from the
//    classic area law sigma(VT) = AVT/sqrt(W*L), referred through the
//    first stage (pair directly, load mirror scaled by gm3/gm1);
//  * a Monte-Carlo measurement: every device's threshold is perturbed by a
//    Gaussian draw of its own sigma and the resulting input offset is
//    found by the same output-nulling bisection the testbench uses.
#pragma once

#include <cstdint>

#include "synth/opamp_design.h"
#include "tech/technology.h"

namespace oasys::synth {

// Analytic one-sigma random input offset [V] (first-stage devices only;
// later stages are attenuated by the first-stage gain).
double predict_random_offset_sigma(const OpAmpDesign& design,
                                   const tech::Technology& t);

struct MismatchOptions {
  int samples = 50;
  std::uint64_t seed = 1;
};

struct MismatchResult {
  bool ok = false;
  std::string error;
  int samples = 0;        // converged samples
  double mean_offset = 0.0;   // [V] (systematic component)
  double sigma_offset = 0.0;  // [V] (random component, sample stddev)
  double worst_offset = 0.0;  // max |offset| seen [V]
};

MismatchResult monte_carlo_offset(const OpAmpDesign& design,
                                  const tech::Technology& t,
                                  const MismatchOptions& opts = {});

}  // namespace oasys::synth
