#include "synth/comparator.h"

#include <algorithm>
#include <cmath>

#include "spice/measure.h"
#include "spice/tran.h"
#include "synth/designer_common.h"
#include "synth/netlist_builder.h"
#include "util/text.h"

namespace oasys::synth {

using util::format;

util::DiagnosticLog ComparatorSpec::validate() const {
  util::DiagnosticLog log;
  if (!(resolution > 0.0)) {
    log.error("spec-invalid", "resolution must be positive");
  }
  if (!(tprop_max > 0.0)) {
    log.error("spec-invalid", "tprop_max must be positive");
  }
  if (!(cload > 0.0)) {
    log.error("spec-invalid", "cload must be positive");
  }
  if (!(out_high > out_low)) {
    log.error("spec-invalid", "out_high must exceed out_low");
  }
  if (icmr_hi < icmr_lo) {
    log.error("spec-invalid", "icmr_hi must be >= icmr_lo");
  }
  return log;
}

std::string ComparatorSpec::to_string() const {
  std::ostringstream os;
  os << "comparator spec " << (name.empty() ? "(unnamed)" : name) << ":\n";
  os << format("  resolution <= %.1f mV\n", util::in_mv(resolution));
  os << format("  tprop      <= %.3g us\n", tprop_max / util::kMicro);
  os << format("  CL          = %.3g pF\n", util::in_pf(cload));
  os << format("  levels      = [%.2f, %.2f] V\n", out_low, out_high);
  os << format("  ICMR        = [%.2f, %.2f] V\n", icmr_lo, icmr_hi);
  if (power_max > 0.0) {
    os << format("  power      <= %.3g mW\n", util::in_mw(power_max));
  }
  return os.str();
}

namespace {

using internal::OpAmpContext;

// Comparator plan context: the op-amp context plus the comparator spec.
struct ComparatorContext : OpAmpContext {
  ComparatorContext(const tech::Technology& t, const ComparatorSpec& cs,
                    const SynthOptions& o)
      : OpAmpContext(t, make_amp_spec(cs, t), o), cspec(cs) {}

  // The sub-block designers speak op-amp spec axes; the comparator plan
  // translates its own axes into them.
  static core::OpAmpSpec make_amp_spec(const ComparatorSpec& cs,
                                       const tech::Technology& t) {
    core::OpAmpSpec s;
    s.name = cs.name;
    s.cload = cs.cload;
    s.icmr_lo = cs.icmr_lo;
    s.icmr_hi = cs.icmr_hi;
    s.power_max = cs.power_max;
    s.swing_pos = cs.out_high - t.mid_supply();
    s.swing_neg = t.mid_supply() - cs.out_low;
    return s;
  }

  ComparatorSpec cspec;
  ComparatorDesign result;
};

core::Plan<ComparatorContext> build_comparator_plan() {
  core::Plan<ComparatorContext> plan("comparator");

  plan.add_step("derive-targets", [](ComparatorContext& ctx) {
    const auto& cs = ctx.cspec;
    // Gain must turn the resolution overdrive into the full logic swing
    // with margin.
    const double swing = cs.out_high - cs.out_low;
    const double gain_margin = ctx.get_or("gain_margin", 1.5);
    ctx.set("av_req", gain_margin * swing / cs.resolution);
    // Delay budget split: slewing the load, then linear regeneration.
    ctx.set("t_slew", 0.5 * cs.tprop_max);
    ctx.set("t_linear", 0.4 * cs.tprop_max);
    ctx.out.style = OpAmpStyle::kOneStageOta;
    return core::StepStatus::success();
  });

  plan.add_step("tail-current", [](ComparatorContext& ctx) {
    // Slew half the swing within the slew budget.
    const auto& cs = ctx.cspec;
    const double dv = 0.5 * (cs.out_high - cs.out_low);
    const double itail = std::max(cs.cload * dv / ctx.get("t_slew"),
                                  util::ua(2.0));
    ctx.set("itail", itail);
    return core::StepStatus::success();
  });

  plan.add_step("input-gm", [](ComparatorContext& ctx) {
    // Linear regeneration: with a single pole at 1/(Rout CL) the output
    // heads for Av*vin = m*swing; reaching half the swing takes
    // tau * ln(2m/(2m-1)).  Bound tau from the delay budget, then
    // gm = Av/Rout.
    const double m = ctx.get_or("gain_margin", 1.5);
    const double tau_max =
        ctx.get("t_linear") / std::log(2.0 * m / (2.0 * m - 1.0));
    const double rout_max = tau_max / ctx.cspec.cload;
    ctx.set("rout_max", rout_max);
    double gm1 = ctx.get("av_req") / rout_max;
    gm1 = std::max(gm1, ctx.get("itail") / 0.6);
    ctx.set("gm1", gm1);
    const double vov1 = ctx.get("itail") / gm1;
    if (vov1 < blocks::kMinOverdrive) {
      return core::StepStatus::fail(
          "vov1-floor", format("pair overdrive %.0f mV below floor",
                               util::in_mv(vov1)));
    }
    ctx.set("vov1", vov1);
    return core::StepStatus::success();
  });

  plan.add_step("gain-length", [](ComparatorContext& ctx) {
    const auto& t = ctx.technology();
    const double id1 = ctx.get("itail") / 2.0;
    if (!ctx.out.stage1_cascode) {
      // Choose L so Rout lands near (not above) rout_max with the needed
      // gain: lambda_tot = 1/(rout * id1).
      const double rout_needed = ctx.get("av_req") / ctx.get("gm1");
      const double lambda_tot = 1.0 / (rout_needed * id1);
      double l = std::max((t.nmos.lambda_l + t.pmos.lambda_l) / lambda_tot,
                          t.lmin);
      if (l > blocks::max_length(t)) {
        return core::StepStatus::fail(
            "gain-shortfall",
            format("resolution %.1f mV needs L = %.1f um > limit",
                   util::in_mv(ctx.cspec.resolution), util::in_um(l)));
      }
      ctx.set("l1", l);
    } else {
      // Telescopic: verify the cascode equations reach the gain, and that
      // the output-high level clears the cascoded load's compliance.
      const double l = t.lmin;
      const double vov1 = ctx.get("vov1");
      const double gm_c = mos::gm_from_id_vov(id1, vov1);
      const double ro_n = mos::rout_sat(t.nmos.lambda_at(l), id1);
      const double r_down = mos::rout_cascode(gm_c, ro_n, ro_n);
      const double ro_p = mos::rout_sat(t.pmos.lambda_at(l), id1);
      const double gm_cp = mos::gm_from_id_vov(id1, 0.25);
      const double r_up = mos::rout_cascode(gm_cp, ro_p, ro_p);
      const double av = ctx.get("gm1") * mos::parallel(r_up, r_down);
      if (av < ctx.get("av_req")) {
        return core::StepStatus::fail(
            "gain-unreachable",
            format("cascoded comparator reaches %.1f dB < required %.1f dB",
                   util::db20(av), util::db20(ctx.get("av_req"))));
      }
      const double load_compliance =
          t.pmos.vt0 + 2.0 * blocks::kMinOverdrive;
      if (ctx.vdd() - load_compliance < ctx.cspec.out_high) {
        return core::StepStatus::fail(
            "gain-unreachable",
            "cascoded load cannot reach the required output-high level");
      }
      ctx.set("l1", l);
    }
    return core::StepStatus::success();
  });

  plan.add_step("design-pair", [](ComparatorContext& ctx) {
    blocks::DiffPairSpec ps;
    ps.role_prefix = "M";
    ps.type = mos::MosType::kNmos;
    ps.gm = ctx.get("gm1");
    ps.itail = ctx.get("itail");
    ps.l = ctx.get("l1");
    ps.style = ctx.out.stage1_cascode ? blocks::DiffPairStyle::kCascode
                                      : blocks::DiffPairStyle::kSimple;
    const double vgs1 = internal::input_pair_vgs(
        ctx.technology(), ctx.get("vov1"), ctx.icmr_mid());
    ctx.set("vgs1", vgs1);
    ps.vsb = ctx.icmr_mid() - vgs1 - ctx.vss();
    ctx.pair = blocks::design_diff_pair(ctx.technology(), ps);
    if (!ctx.pair.feasible) {
      return core::StepStatus::fail("pair-infeasible",
                                    ctx.pair.log.to_string());
    }
    return core::StepStatus::success();
  });

  plan.add_step("design-load-mirror", [](ComparatorContext& ctx) {
    const double id1 = ctx.get("itail") / 2.0;
    blocks::CurrentMirrorSpec ms;
    ms.role_prefix = "ML";
    ms.type = mos::MosType::kPmos;
    ms.iin = id1;
    ms.iout = id1;
    ms.rout_min = ctx.out.stage1_cascode
                      ? 0.0  // verified jointly in gain-length
                      : 2.0 * ctx.get("av_req") / ctx.get("gm1");
    ms.compliance_max = ctx.vdd() - ctx.cspec.out_high;
    ms.vds_out_nominal = ctx.vdd() - ctx.mid();
    ctx.load = blocks::design_mirror_style(
        ctx.technology(), ms,
        ctx.out.stage1_cascode ? blocks::MirrorStyle::kCascode
                               : blocks::MirrorStyle::kSimple);
    if (!ctx.load.feasible) {
      return core::StepStatus::fail("load-infeasible",
                                    ctx.load.log.to_string());
    }
    return core::StepStatus::success();
  });

  plan.add_step("levels-check", [](ComparatorContext& ctx) {
    // Output-high: the mirror was designed inside the compliance budget.
    // Output-low: the pair (or its cascode) leaves saturation one VT below
    // the input common mode, so the binding case is the TOP of the ICMR —
    // a trip point there must still pull the output to the low level.
    const double vgs1_hi = internal::input_pair_vgs(
        ctx.technology(), ctx.get("vov1"), ctx.icmr_hi());
    const double vt1_hi = vgs1_hi - ctx.get("vov1");
    double out_low_limit = ctx.icmr_hi() - vt1_hi;
    if (ctx.out.stage1_cascode) {
      out_low_limit = ctx.icmr_hi() - vgs1_hi +
                      2.0 * ctx.get("vov1") + blocks::kMinOverdrive;
    }
    ctx.set("out_low_limit", out_low_limit);
    if (out_low_limit > ctx.cspec.out_low) {
      return core::StepStatus::fail(
          "swing-low",
          format("output-low limit %.2f V misses the required %.2f V",
                 out_low_limit, ctx.cspec.out_low));
    }
    return core::StepStatus::success();
  });

  plan.add_step("offset-vs-resolution", [](ComparatorContext& ctx) {
    // The systematic offset eats directly into the resolution budget.
    const double id1 = ctx.get("itail") / 2.0;
    const double offset =
        std::abs(ctx.load.current_error_frac) * id1 / ctx.get("gm1");
    ctx.set("offset_pred", offset);
    if (offset > 0.5 * ctx.cspec.resolution) {
      return core::StepStatus::fail(
          "offset-vs-resolution",
          format("systematic offset %.2f mV eats the %.1f mV resolution",
                 util::in_mv(offset), util::in_mv(ctx.cspec.resolution)));
    }
    return core::StepStatus::success();
  });

  plan.add_step("design-bias", [](ComparatorContext& ctx) {
    blocks::BiasChainSpec bs;
    bs.style = ctx.opts.bias_style;
    bs.iref = std::clamp(ctx.get("itail"), util::ua(5.0), ctx.opts.iref);
    blocks::BiasTap tail;
    tail.role = "M5";
    tail.type = mos::MosType::kNmos;
    tail.iout = ctx.get("itail");
    tail.compliance_max =
        ctx.icmr_constrained()
            ? ctx.icmr_lo() - ctx.vss() - ctx.get("vgs1")
            : 0.4;
    bs.taps.push_back(tail);
    ctx.bias = blocks::design_bias_chain(ctx.technology(), bs);
    if (!ctx.bias.feasible) {
      return core::StepStatus::fail("bias-infeasible",
                                    ctx.bias.log.to_string());
    }
    ctx.out.iref = bs.iref;
    return core::StepStatus::success();
  });

  plan.add_step("finalize", [](ComparatorContext& ctx) {
    OpAmpDesign& amp = ctx.out;
    amp.itail = ctx.get("itail");
    amp.rref = ctx.bias.rref;
    amp.ideal_bias_reference =
        ctx.bias.style == blocks::BiasStyle::kIdealReference;
    if (amp.stage1_cascode) {
      // Telescopic input-cascode gate bias (see OTA designer).
      const auto& t = ctx.technology();
      const double vtail = ctx.icmr_mid() - ctx.get("vgs1");
      const double vd1 = vtail + ctx.get("vov1") + 0.10;
      const double vsb_c = std::max(vd1 - ctx.vss(), 0.0);
      amp.vb_cascode_n =
          vd1 + mos::vgs_for(t.nmos, ctx.get("vov1"), vsb_c);
    }
    internal::collect_devices(ctx);
    amp.feasible = true;

    ComparatorDesign& r = ctx.result;
    const double r_out =
        mos::parallel(ctx.pair.rout_drain, ctx.load.rout);
    r.gain_db = util::db20(ctx.get("gm1") * r_out);
    // Delay prediction: the initial output current is gm*vin (clipped at
    // the tail current once the pair fully steers); the output must move
    // half the swing to cross the trip level.
    const double swing = ctx.cspec.out_high - ctx.cspec.out_low;
    const double i_drive = std::min(
        ctx.get("gm1") * ctx.cspec.resolution, ctx.get("itail"));
    r.delay = ctx.cspec.cload * 0.5 * swing / i_drive;
    r.offset = ctx.get("offset_pred");
    r.power = (ctx.get("itail") + ctx.bias.ibias_total) *
              ctx.technology().supply_span();
    r.area = blocks::devices_area(ctx.technology(), amp.devices);
    amp.predicted.gain_db = r.gain_db;
    amp.predicted.offset = r.offset;
    amp.predicted.power = r.power;
    amp.predicted.area = r.area;
    // Informational GBW so the measurement layer scales its AC floor.
    amp.predicted.gbw = ctx.get("gm1") /
                        (util::kTwoPi * ctx.cspec.cload);
    if (ctx.cspec.power_max > 0.0 && r.power > ctx.cspec.power_max) {
      return core::StepStatus::fail(
          "power-over", format("power %.2f mW exceeds budget",
                               util::in_mw(r.power)));
    }
    return core::StepStatus::success();
  });

  // ---- rules --------------------------------------------------------------
  const std::size_t idx_targets = plan.step_index("derive-targets");
  const std::size_t idx_pair = plan.step_index("design-pair");
  const std::size_t plan_gain_length_index = plan.step_index("gain-length");
  const std::size_t plan_input_gm_index = plan.step_index("input-gm");

  plan.add_rule("raise-itail-for-gm",
                [](ComparatorContext& ctx, const core::StepFailure& f)
                    -> std::optional<core::PatchAction> {
                  if (f.code != "vov1-floor") return std::nullopt;
                  if (ctx.bump("raise-itail") > 2) return std::nullopt;
                  ctx.set("itail",
                          ctx.get("gm1") * blocks::kMinOverdrive * 1.05);
                  return core::PatchAction::retry_step("raised tail current");
                });

  // Offset eats the resolution: lengthen the load (smaller lambda, smaller
  // Vds-mismatch error), re-running from the pair design.
  // Gain out of reach for the simple style: cascode the input stage (the
  // extra gain also eliminates the mirror's systematic offset, which is
  // worth double its weight in a comparator).
  plan.add_rule(
      "cascode-for-resolution",
      [](ComparatorContext& ctx, const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        if (f.code != "gain-shortfall" || ctx.out.stage1_cascode) {
          return std::nullopt;
        }
        ctx.out.stage1_cascode = true;
        return core::PatchAction::retry_step(
            "cascoded the input stage for resolution gain");
      });

  // Long channels (for gain) made the pair too wide for its gm: the
  // cascode gets the same gain at minimum length, where the width fits.
  plan.add_rule(
      "cascode-for-width",
      [plan_gain_length_index](ComparatorContext& ctx,
                               const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        if (f.code != "pair-infeasible" || ctx.out.stage1_cascode) {
          return std::nullopt;
        }
        ctx.out.stage1_cascode = true;
        return core::PatchAction::restart_at(
            plan_gain_length_index,
            "cascoded the input stage: gain at Lmin keeps the pair width "
            "in range");
      });

  // Already cascoded and still too wide: the width scales as gm^2/Itail at
  // fixed length, so more tail current buys a narrower pair (at a power
  // cost the power check will arbitrate).
  plan.add_rule(
      "raise-itail-for-width",
      [plan_input_gm_index](ComparatorContext& ctx,
                            const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        if (f.code != "pair-infeasible" || !ctx.out.stage1_cascode) {
          return std::nullopt;
        }
        if (ctx.bump("widen-itail") > 3) return std::nullopt;
        ctx.set("itail", ctx.get("itail") * 1.6);
        return core::PatchAction::restart_at(
            plan_input_gm_index, "raised tail current to narrow the pair");
      });

  plan.add_rule(
      "lengthen-load-for-offset",
      [idx_pair](ComparatorContext& ctx, const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        if (f.code != "offset-vs-resolution") return std::nullopt;
        if (ctx.bump("lengthen-load") > 2) return std::nullopt;
        const double l_new = ctx.get("l1") * 1.6;
        if (l_new > blocks::max_length(ctx.technology())) {
          return std::nullopt;
        }
        ctx.set("l1", l_new);
        return core::PatchAction::restart_at(
            idx_pair,
            format("lengthened channels to %.1f um to shrink offset",
                   util::in_um(l_new)));
      });

  plan.add_rule("trim-gain-margin-for-power",
                [idx_targets](ComparatorContext& ctx,
                              const core::StepFailure& f)
                    -> std::optional<core::PatchAction> {
                  if (f.code != "power-over") return std::nullopt;
                  if (ctx.bump("trim-power") > 1) return std::nullopt;
                  ctx.set("gain_margin", 1.2);
                  return core::PatchAction::restart_at(
                      idx_targets, "trimmed the gain margin to meet power");
                });

  return plan;
}

}  // namespace

ComparatorDesign design_comparator(const tech::Technology& t,
                                   const ComparatorSpec& spec,
                                   const SynthOptions& opts) {
  ComparatorContext ctx(t, spec, opts);
  ctx.result.spec = spec;
  if (spec.validate().has_errors()) {
    ctx.result.amp.log.append(spec.validate());
    return std::move(ctx.result);
  }
  static const core::Plan<ComparatorContext> plan = build_comparator_plan();
  core::ExecutorOptions exec;
  exec.rules_enabled = opts.rules_enabled;
  exec.max_patches = opts.max_patches;
  ctx.out.trace = core::execute_plan(plan, ctx, exec);
  ctx.out.feasible = ctx.out.trace.success && ctx.out.feasible;
  ctx.out.log.append(ctx.log());
  if (!ctx.out.trace.success) {
    ctx.out.log.error("style-infeasible", ctx.out.trace.abort_reason);
  }
  ctx.result.amp = std::move(ctx.out);
  ctx.result.feasible = ctx.result.amp.feasible;
  return std::move(ctx.result);
}

MeasuredComparator measure_comparator(const ComparatorDesign& design,
                                      const tech::Technology& t) {
  MeasuredComparator m;
  if (!design.feasible) {
    m.error = "design is infeasible";
    return m;
  }
  // Reuse the op-amp offset search (also validates the DC setup).
  MeasureOptions mo;
  mo.measure_slew = false;
  mo.measure_icmr = false;
  const MeasuredOpAmp amp = measure_opamp(design.amp, t, mo);
  if (!amp.ok) {
    m.error = "comparator DC/AC measurement failed: " + amp.error;
    return m;
  }
  m.offset = amp.perf.offset;
  m.power = amp.perf.power;

  // Transient: drive the positive input with a step of +/-resolution about
  // the trip point and time the output's mid-supply crossings.
  ckt::Circuit c;
  const BuiltOpAmp nodes = build_opamp(design.amp, t, c);
  c.add_vsource("VDD", nodes.vdd, ckt::kGround, ckt::Waveform::dc(t.vdd));
  c.add_vsource("VSS", nodes.vss, ckt::kGround, ckt::Waveform::dc(t.vss));
  c.add_capacitor("CL", nodes.out, ckt::kGround, design.spec.cload);
  const double vcm = 0.5 * (design.spec.icmr_lo + design.spec.icmr_hi);
  // The trip point of the positive input, offset-nulled: the op-amp offset
  // search applied vid differentially, here the whole vid lands on inp.
  const double trip = vcm + amp.offset_applied;
  c.add_vsource("VREF", nodes.inn, ckt::kGround, ckt::Waveform::dc(vcm));
  const double half = design.spec.tprop_max * 4.0;
  c.add_vsource(
      "VSTEP", nodes.inp, ckt::kGround,
      ckt::Waveform::pulse(trip - design.spec.resolution,
                           trip + design.spec.resolution,
                           0.1 * design.spec.tprop_max, 1e-9, 1e-9, half,
                           2.0 * half));

  const sim::OpResult op = sim::dc_operating_point(c, t);
  if (!op.converged) {
    m.error = "comparator transient operating point failed";
    return m;
  }
  sim::TranOptions to;
  to.tstop = 2.0 * half;
  to.dt = design.spec.tprop_max / 400.0;
  const sim::TranResult tr = sim::transient(c, t, op, to);
  if (!tr.ok) {
    m.error = "comparator transient failed: " + tr.error;
    return m;
  }
  const sim::MnaLayout layout(c);
  const std::vector<double> vout = tr.node_waveform(layout, nodes.out);
  const double mid = t.mid_supply();
  const double t_rise_start = 0.1 * design.spec.tprop_max;
  const double t_fall_start = t_rise_start + half;

  auto crossing_after = [&](double t0, bool rising) -> double {
    for (std::size_t i = 1; i < tr.time.size(); ++i) {
      if (tr.time[i] <= t0) continue;
      const bool crossed = rising ? (vout[i - 1] < mid && vout[i] >= mid)
                                  : (vout[i - 1] > mid && vout[i] <= mid);
      if (crossed) return tr.time[i] - t0;
    }
    return -1.0;
  };
  const double rise = crossing_after(t_rise_start, true);
  const double fall = crossing_after(t_fall_start, false);
  if (rise < 0.0 || fall < 0.0) {
    m.error = "output never crossed mid-supply";
    return m;
  }
  m.delay_rising = rise;
  m.delay_falling = fall;
  // Settled logic levels: the high plateau before the falling edge, the
  // low plateau anywhere in the record.
  m.out_high = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < tr.time.size(); ++i) {
    if (tr.time[i] < t_fall_start) m.out_high = std::max(m.out_high, vout[i]);
  }
  m.out_low = *std::min_element(vout.begin(), vout.end());
  m.ok = true;
  return m;
}

}  // namespace oasys::synth
