#include "synth/testbench.h"

#include <algorithm>
#include <cmath>

#include "exec/executor.h"
#include "numeric/interpolate.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "numeric/rootfind.h"
#include "spice/ac.h"
#include "spice/dc.h"
#include "spice/sweep.h"
#include "spice/tran.h"
#include "util/units.h"

namespace oasys::synth {

namespace {

// Open-loop measurement fixture: supplies, differential input sources
// around the spec's common-mode midpoint, and the load.
struct OpenLoopBench {
  ckt::Circuit circuit;
  BuiltOpAmp nodes;
  std::size_t vip_idx = 0;
  std::size_t vin_idx = 0;
  std::size_t vdd_idx = 0;
  double vcm = 0.0;

  OpenLoopBench(const OpAmpDesign& d, const tech::Technology& t) {
    nodes = build_opamp(d, t, circuit);
    circuit.add_vsource("VDD", nodes.vdd, ckt::kGround,
                        ckt::Waveform::dc(t.vdd));
    circuit.add_vsource("VSS", nodes.vss, ckt::kGround,
                        ckt::Waveform::dc(t.vss));
    vcm = d.spec.icmr_lo != 0.0 || d.spec.icmr_hi != 0.0
              ? 0.5 * (d.spec.icmr_lo + d.spec.icmr_hi)
              : t.mid_supply();
    circuit.add_vsource("VIP", nodes.inp, ckt::kGround,
                        ckt::Waveform::ac(vcm, 0.5, 0.0));
    circuit.add_vsource("VIN", nodes.inn, ckt::kGround,
                        ckt::Waveform::ac(vcm, 0.5, 180.0));
    if (d.spec.cload > 0.0) {
      circuit.add_capacitor("CL", nodes.out, ckt::kGround, d.spec.cload);
    }
    vip_idx = *circuit.find_vsource("VIP");
    vin_idx = *circuit.find_vsource("VIN");
    vdd_idx = *circuit.find_vsource("VDD");
  }

  void set_vid(double vid) {
    circuit.vsource(vip_idx).wave =
        circuit.vsource(vip_idx).wave.with_dc(vcm + 0.5 * vid);
    circuit.vsource(vin_idx).wave =
        circuit.vsource(vin_idx).wave.with_dc(vcm - 0.5 * vid);
  }
};

}  // namespace

MeasuredOpAmp measure_opamp(const OpAmpDesign& design,
                            const tech::Technology& t,
                            const MeasureOptions& opts) {
  static obs::Counter& measurements =
      obs::Registry::global().counter("synth.measurements");
  measurements.add();
  OBS_SPAN("synth/measure_opamp");
  MeasuredOpAmp m;
  OpenLoopBench bench(design, t);
  sim::MnaLayout layout(bench.circuit);
  const double mid = t.mid_supply();

  // --- systematic offset: null the output by bisection on vid -------------
  sim::OpOptions op_opts;
  std::vector<double> warm;
  auto out_error = [&](double vid) {
    bench.set_vid(vid);
    sim::OpOptions o = op_opts;
    o.initial_guess = warm;
    const sim::OpResult op = sim::dc_operating_point(bench.circuit, t, o);
    if (!op.converged) return std::nan("");
    warm = op.solution;
    return op.voltage(layout, bench.nodes.out) - mid;
  };
  const auto bracket = num::bracket_root(out_error, -0.05, 0.05, 8);
  if (!bracket) {
    m.error = "could not bracket the output null (offset search)";
    return m;
  }
  num::RootOptions root_opts;
  root_opts.xtol = 1e-9;
  const auto vid_null =
      num::bisect(out_error, bracket->first, bracket->second, root_opts);
  if (!vid_null) {
    m.error = "offset bisection failed";
    return m;
  }
  m.offset_applied = *vid_null;
  m.perf.offset = std::abs(*vid_null);

  // --- operating point at the null ------------------------------------------
  bench.set_vid(*vid_null);
  sim::OpOptions null_opts = op_opts;
  null_opts.initial_guess = warm;
  const sim::OpResult op = sim::dc_operating_point(bench.circuit, t, null_opts);
  if (!op.converged) {
    m.error = "operating point at the offset null did not converge";
    return m;
  }
  m.perf.power = sim::supply_power(bench.circuit, layout, op);
  for (std::size_t k = 0; k < bench.circuit.mosfets().size(); ++k) {
    if (op.devices[k].region != mos::Region::kSaturation) {
      m.non_saturated.push_back(bench.circuit.mosfets()[k].name);
    }
  }

  // --- differential AC: gain, GBW, PM, Bode -----------------------------------
  // The sweep must start a decade-plus below the dominant pole or the "DC"
  // gain sample and the phase reference are already rolling off; estimate
  // the pole from the design's predicted gain and GBW.
  double fmin = opts.ac_fmin;
  if (design.predicted.gain_db > 0.0 && design.predicted.gbw > 0.0) {
    const double pole_est = design.predicted.gbw /
                            util::from_db20(design.predicted.gain_db);
    fmin = std::min(fmin, std::max(pole_est / 30.0, 1e-4));
  }
  const std::vector<double> freqs =
      num::logspace(fmin, opts.ac_fmax, opts.ac_points);
  const sim::AcResult ac =
      sim::ac_analysis(bench.circuit, t, op, freqs, opts.jobs);
  if (!ac.ok) {
    m.error = "AC analysis failed: " + ac.error;
    return m;
  }
  m.bode = sim::bode_of_node(ac, layout, bench.nodes.out);
  const sim::LoopMetrics lm = sim::loop_metrics(m.bode);
  m.perf.gain_db = lm.dc_gain_db;
  m.perf.gbw = lm.unity_gain_freq.value_or(0.0);
  m.perf.pm_deg = lm.phase_margin_deg.value_or(0.0);

  // --- noise: output spectrum referred to the input ---------------------------
  if (opts.measure_noise && m.perf.gbw > 0.0) {
    const double f_lo = std::max(1e3, m.perf.gbw * 1e-3);
    const double f_hi = m.perf.gbw;
    m.noise = sim::noise_analysis(
        bench.circuit, t, op, bench.nodes.out,
        num::logspace(f_lo, f_hi, opts.noise_points));
    if (m.noise.ok) {
      m.input_noise_density.resize(m.noise.freqs.size());
      for (std::size_t i = 0; i < m.noise.freqs.size(); ++i) {
        const double gain_db = num::interp_semilogx(
            m.bode.freqs, m.bode.gain_db, m.noise.freqs[i]);
        const double h = util::from_db20(gain_db);
        m.input_noise_density[i] =
            std::sqrt(m.noise.output_psd[i]) / std::max(h, 1e-12);
      }
      // White-region reference: a third of the unity-gain frequency.
      m.perf.noise_in = num::interp_semilogx(
          m.noise.freqs, m.input_noise_density, 0.3 * m.perf.gbw);
    }
  }

  // --- CMRR: drive both inputs in phase ---------------------------------------
  {
    bench.circuit.vsource(bench.vip_idx).wave =
        bench.circuit.vsource(bench.vip_idx).wave.with_ac(1.0, 0.0);
    bench.circuit.vsource(bench.vin_idx).wave =
        bench.circuit.vsource(bench.vin_idx).wave.with_ac(1.0, 0.0);
    const sim::AcResult accm =
        sim::ac_analysis(bench.circuit, t, op, {fmin});
    if (accm.ok) {
      const double acm =
          std::abs(accm.voltage(layout, 0, bench.nodes.out));
      if (acm > 0.0) {
        m.perf.cmrr_db = m.perf.gain_db - util::db20(acm);
      }
    }
  }
  // --- PSRR: inject on VDD ------------------------------------------------------
  {
    bench.circuit.vsource(bench.vip_idx).wave =
        bench.circuit.vsource(bench.vip_idx).wave.with_ac(0.0);
    bench.circuit.vsource(bench.vin_idx).wave =
        bench.circuit.vsource(bench.vin_idx).wave.with_ac(0.0);
    bench.circuit.vsource(bench.vdd_idx).wave =
        bench.circuit.vsource(bench.vdd_idx).wave.with_ac(1.0, 0.0);
    const sim::AcResult acps =
        sim::ac_analysis(bench.circuit, t, op, {fmin});
    if (acps.ok) {
      const double avdd =
          std::abs(acps.voltage(layout, 0, bench.nodes.out));
      if (avdd > 0.0) {
        m.perf.psrr_db = m.perf.gain_db - util::db20(avdd);
      }
    }
  }

  // --- output swing: large differential overdrive --------------------------------
  {
    sim::OpOptions o = op_opts;
    o.initial_guess = op.solution;
    bench.set_vid(*vid_null + opts.swing_overdrive);
    const sim::OpResult hi = sim::dc_operating_point(bench.circuit, t, o);
    bench.set_vid(*vid_null - opts.swing_overdrive);
    const sim::OpResult lo = sim::dc_operating_point(bench.circuit, t, o);
    if (hi.converged) {
      m.perf.swing_pos = hi.voltage(layout, bench.nodes.out) - mid;
    }
    if (lo.converged) {
      m.perf.swing_neg = mid - lo.voltage(layout, bench.nodes.out);
    }
    bench.set_vid(*vid_null);
  }

  // --- follower fixture for slew and ICMR ------------------------------------
  if (opts.measure_slew || opts.measure_icmr) {
    ckt::Circuit fc;
    // Wire the inverting input straight to the output: unity-gain buffer.
    const ckt::NodeId fout = fc.node("out");
    const BuiltOpAmp fn = build_opamp(design, t, fc, fout);
    fc.add_vsource("VDD", fn.vdd, ckt::kGround, ckt::Waveform::dc(t.vdd));
    fc.add_vsource("VSS", fn.vss, ckt::kGround, ckt::Waveform::dc(t.vss));
    if (design.spec.cload > 0.0) {
      fc.add_capacitor("CL", fn.out, ckt::kGround, design.spec.cload);
    }
    const sim::MnaLayout flayout(fc);

    if (opts.measure_slew) {
      const double slew_target =
          std::max(design.spec.slew_min, util::v_per_us(0.1));
      const double t_edge = opts.step_amplitude / slew_target;
      const double t_settle =
          m.perf.gbw > 0.0 ? 10.0 / m.perf.gbw : t_edge;
      const double t_half = 3.0 * t_edge + 3.0 * t_settle;
      const double dt = t_half / 600.0;
      fc.add_vsource(
          "VSTEP", fn.inp, ckt::kGround,
          ckt::Waveform::pulse(bench.vcm - 0.5 * opts.step_amplitude,
                               bench.vcm + 0.5 * opts.step_amplitude,
                               2.0 * dt, dt, dt, t_half, 2.0 * t_half));
      const sim::OpResult fop = sim::dc_operating_point(fc, t);
      if (fop.converged) {
        sim::TranOptions to;
        to.tstop = 2.0 * t_half;
        to.dt = dt;
        const sim::TranResult tr = sim::transient(fc, t, fop, to);
        if (tr.ok) {
          const auto slew = sim::slew_rate(tr, flayout, fn.out);
          if (slew) {
            m.perf.slew = std::min(slew->rising, slew->falling);
          }
        }
      }
      // Remove the step source for the ICMR sweep below by rebuilding.
    }

    if (opts.measure_icmr) {
      ckt::Circuit ic;
      const ckt::NodeId iout = ic.node("out");
      const BuiltOpAmp in = build_opamp(design, t, ic, iout);
      ic.add_vsource("VDD", in.vdd, ckt::kGround, ckt::Waveform::dc(t.vdd));
      ic.add_vsource("VSS", in.vss, ckt::kGround, ckt::Waveform::dc(t.vss));
      if (design.spec.cload > 0.0) {
        ic.add_capacitor("CL", in.out, ckt::kGround, design.spec.cload);
      }
      ic.add_vsource("VCM", in.inp, ckt::kGround,
                     ckt::Waveform::dc(bench.vcm));
      const sim::MnaLayout ilayout(ic);
      const std::vector<double> points = num::linspace(
          t.vss + 0.3, t.vdd - 0.3, opts.icmr_points);
      const sim::DcSweepResult sweep =
          sim::dc_sweep_vsource(ic, t, "VCM", points);
      if (sweep.ok) {
        const std::vector<double> vout =
            sweep.node_voltages(ilayout, in.out);
        // Widest contiguous tracking window containing the mid common mode.
        double lo = bench.vcm, hi = bench.vcm;
        std::size_t mid_idx = 0;
        double best = 1e9;
        for (std::size_t i = 0; i < points.size(); ++i) {
          if (std::abs(points[i] - bench.vcm) < best) {
            best = std::abs(points[i] - bench.vcm);
            mid_idx = i;
          }
        }
        auto tracks = [&](std::size_t i) {
          return std::abs(vout[i] - points[i]) < opts.icmr_track_tol;
        };
        if (tracks(mid_idx)) {
          std::size_t i = mid_idx;
          while (i > 0 && tracks(i - 1)) --i;
          lo = points[i];
          i = mid_idx;
          while (i + 1 < points.size() && tracks(i + 1)) ++i;
          hi = points[i];
        }
        m.perf.icmr_lo = lo;
        m.perf.icmr_hi = hi;
      }
    }
  }

  m.perf.area = design.predicted.area;  // area is a layout estimate
  m.ok = true;
  return m;
}

std::vector<MeasuredOpAmp> measure_across_corners(
    const OpAmpDesign& design, const tech::Technology& nominal,
    const std::vector<tech::Corner>& corners, const MeasureOptions& opts,
    std::size_t jobs) {
  std::vector<MeasuredOpAmp> out(corners.size());
  exec::parallel_for(
      corners.size(),
      [&](std::size_t i) {
        const tech::Technology ct = tech::at_corner(nominal, corners[i]);
        // Nested AC fan-out inside measure_opamp runs inline on this lane.
        out[i] = measure_opamp(design, ct, opts);
      },
      jobs);
  return out;
}

}  // namespace oasys::synth
