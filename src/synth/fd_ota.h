// Fully differential OTA — the second topology named in the paper's
// future-work list ("folded cascade and fully differential styles").
//
// Topology template: NMOS differential pair with PMOS current-source
// loads and differential outputs, plus the piece that makes fully
// differential circuits a genuinely different design problem: a
// common-mode feedback (CMFB) loop.  The output common mode is sensed
// through source followers and an averaging resistor pair, compared to a
// reference by a small CMFB amplifier, and fed back to the load gates;
// an explicit capacitor keeps the CM loop dominant-pole compensated.
//
// Device roles: "M1"/"M2" (pair), "ML3"/"ML4" (loads, CMFB-controlled),
// "M5" (tail tap), "SF1"/"SF2" (sense followers) with "SFB1"/"SFB2"
// (their sink taps), "MC1"/"MC2"/"MC3"/"MC4" (CMFB amp) with "MC5"
// (its tail tap), plus the bias chain; passives RCM1/RCM2 (averaging)
// and CCM (CM-loop compensation).  The CM reference is an ideal source
// at the follower-shifted mid-supply level (documented substitution,
// like the cascode gate biases).
#pragma once

#include "core/spec.h"
#include "netlist/circuit.h"
#include "synth/opamp_design.h"
#include "tech/technology.h"

namespace oasys::synth {

struct FdOtaDesign {
  core::OpAmpSpec spec;   // differential interpretation: gain/GBW/swing
                          // are differential-output quantities per side
  bool feasible = false;

  std::vector<blocks::SizedDevice> devices;
  double rref = 0.0;
  bool ideal_bias_reference = false;
  double iref = 0.0;
  double itail = 0.0;
  double i_sf = 0.0;      // per-follower bias [A]
  double i_cmfb = 0.0;    // CMFB amp tail [A]
  double rcm = 0.0;       // averaging resistor [ohm]
  double ccm = 0.0;       // CM-loop compensation capacitor [F]
  double vcm_ref = 0.0;   // ideal CM reference level [V, absolute]

  core::OpAmpPerformance predicted;  // differential axes
  util::DiagnosticLog log;
  core::ExecutionTrace trace;

  const blocks::SizedDevice* device(const std::string& role) const;
};

FdOtaDesign design_fd_ota(const tech::Technology& t,
                          const core::OpAmpSpec& spec,
                          const SynthOptions& opts = {});

// Netlist ports of a built fully differential OTA.
struct BuiltFdOta {
  ckt::NodeId vdd = ckt::kGround;
  ckt::NodeId vss = ckt::kGround;
  ckt::NodeId inp = ckt::kGround;
  ckt::NodeId inn = ckt::kGround;
  ckt::NodeId outp = ckt::kGround;
  ckt::NodeId outm = ckt::kGround;
};

BuiltFdOta build_fd_ota(const FdOtaDesign& design,
                        const tech::Technology& t, ckt::Circuit& c);

// Simulator verification: differential AC response, output common-mode
// accuracy, CM-loop step stability, differential swing.
struct MeasuredFdOta {
  bool ok = false;
  std::string error;
  double gain_db = 0.0;       // differential DC gain
  double gbw = 0.0;           // differential unity-gain frequency [Hz]
  double pm_deg = 0.0;
  double cm_error = 0.0;      // |output CM - mid-supply| at balance [V]
  bool cm_loop_settles = false;  // CM step transient returns and settles
  double swing_pos = 0.0;     // per-side output swing above mid [V]
  double swing_neg = 0.0;
  double cmrr_db = 0.0;       // differential-out rejection of CM drive
};

MeasuredFdOta measure_fd_ota(const FdOtaDesign& design,
                             const tech::Technology& t);

}  // namespace oasys::synth
