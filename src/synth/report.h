// Report rendering: sized-schematic listings and spec/predicted/measured
// comparison tables, shared by the examples and the bench harnesses.
#pragma once

#include <string>

#include "synth/oasys.h"
#include "synth/testbench.h"

namespace oasys::synth {

// Device table of a design ("Figure 5" as text): role, type, W/L, bias.
std::string device_table(const OpAmpDesign& design);

// One-paragraph summary: style, structural flags, key currents, Cc, area.
std::string design_summary(const OpAmpDesign& design);

// Spec vs predicted vs measured, one row per constrained axis ("Table 2").
// Pass nullptr for `measured` to print spec vs predicted only.
std::string comparison_table(const OpAmpDesign& design,
                             const MeasuredOpAmp* measured);

// Full synthesis narrative: selection summary plus the winning design's
// plan trace.
std::string synthesis_report(const SynthesisResult& result);

}  // namespace oasys::synth
