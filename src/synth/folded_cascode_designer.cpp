#include "synth/folded_cascode_designer.h"

#include <algorithm>
#include <cmath>

#include "synth/designer_common.h"
#include "util/text.h"

namespace oasys::synth {

namespace {

using internal::OpAmpContext;
using util::format;

core::Plan<OpAmpContext> build_folded_cascode_plan() {
  core::Plan<OpAmpContext> plan("folded-cascode");

  plan.add_step("derive-targets", [](OpAmpContext& ctx) {
    const auto& s = ctx.spec;
    const double margin = ctx.get_or("target_margin", 1.15);
    ctx.set("gbw_t", std::max(s.gbw_min, util::khz(100.0)) * margin);
    ctx.set("sr_t", s.slew_min * margin);
    ctx.out.style = OpAmpStyle::kFoldedCascode;
    return core::StepStatus::success();
  });

  plan.add_step("currents", [](OpAmpContext& ctx) {
    // Full steering delivers the tail current to the output, so the slew
    // requirement sets Itail; fold sources carry Itail each so the cascode
    // branches never starve during slewing.
    const double itail =
        std::max(ctx.get("sr_t") * ctx.spec.cload, util::ua(2.0));
    ctx.set("itail", itail);
    ctx.set("i_fold", itail);          // per fold source
    ctx.set("i_branch", itail / 2.0);  // per cascode branch at balance
    return core::StepStatus::success();
  });

  plan.add_step("input-gm", [](OpAmpContext& ctx) {
    // Load compensated: GBW = gm1 / (2 pi CL).
    double gm1 = util::kTwoPi * ctx.get("gbw_t") * ctx.spec.cload;
    gm1 = std::max(gm1, ctx.get("itail") / 0.6);
    gm1 = std::max(gm1, ctx.get_or("gm1_floor", 0.0));  // noise rule hook
    ctx.set("gm1", gm1);
    const double vov1 = ctx.get("itail") / gm1;
    if (vov1 < blocks::kMinOverdrive) {
      return core::StepStatus::fail(
          "vov1-floor",
          format("pair overdrive %.0f mV below the square-law floor",
                 util::in_mv(vov1)));
    }
    ctx.set("vov1", vov1);
    return core::StepStatus::success();
  });

  plan.add_step("headroom-budget", [](OpAmpContext& ctx) {
    // Swing-high: the output must rise through the fold source + cascode
    // (two Vdsat from VDD).
    const double hi_budget =
        ctx.spec.swing_pos > 0.0
            ? (ctx.vdd() - (ctx.mid() + ctx.spec.swing_pos)) / 2.0
            : 0.30;
    const double vov_f = std::clamp(hi_budget * 0.9, 0.0, 0.35);
    if (vov_f < blocks::kMinOverdrive) {
      return core::StepStatus::fail(
          "swing-high",
          format("swing +%.2f V leaves %.0f mV per fold device",
                 ctx.spec.swing_pos, util::in_mv(vov_f)));
    }
    ctx.set("vov_fold", vov_f);
    // Swing-low: the self-biased cascode mirror needs VT + 2 Vov.
    const double lo_budget =
        ctx.spec.swing_neg > 0.0
            ? (ctx.mid() - ctx.spec.swing_neg) - ctx.vss()
            : ctx.nmosp().vt0 + 0.5;
    const double vov_m =
        std::clamp((lo_budget * 0.9 - ctx.nmosp().vt0) / 2.0, 0.0, 0.35);
    if (vov_m < blocks::kMinOverdrive) {
      return core::StepStatus::fail(
          "swing-low",
          format("swing -%.2f V cannot fit the cascode mirror (needs VT + "
                 "2 Vov)",
                 ctx.spec.swing_neg));
    }
    ctx.set("vov_mirror", vov_m);
    return core::StepStatus::success();
  });

  plan.add_step("icmr", [](OpAmpContext& ctx) {
    const double vov1 = ctx.get("vov1");
    if (!ctx.icmr_constrained()) {
      ctx.set("tail_compliance", 0.4);
      return core::StepStatus::success();
    }
    // Top: M1 saturates while its drain sits at the fold node,
    // vdd - vov_fold - margin, i.e. the range extends to about a VT above
    // it — the style's selling point.
    const double vgs1_hi =
        internal::input_pair_vgs(ctx.technology(), vov1, ctx.icmr_hi());
    const double fold_level = ctx.vdd() - ctx.get("vov_fold") - 0.1;
    if (ctx.icmr_hi() > fold_level + (vgs1_hi - vov1)) {
      return core::StepStatus::fail(
          "icmr-high", format("common-mode top %.2f V exceeds the fold "
                              "node saturation limit",
                              ctx.icmr_hi()));
    }
    const double vgs1_lo =
        internal::input_pair_vgs(ctx.technology(), vov1, ctx.icmr_lo());
    const double tail_budget = ctx.icmr_lo() - ctx.vss() - vgs1_lo;
    if (tail_budget < blocks::kMinOverdrive) {
      return core::StepStatus::fail(
          "icmr-low",
          format("common-mode bottom %.2f V leaves %.0f mV for the tail",
                 ctx.icmr_lo(), util::in_mv(tail_budget)));
    }
    ctx.set("tail_compliance", tail_budget);
    return core::StepStatus::success();
  });

  plan.add_step("design-pair", [](OpAmpContext& ctx) {
    blocks::DiffPairSpec ps;
    ps.role_prefix = "M";
    ps.type = mos::MosType::kNmos;
    ps.gm = ctx.get("gm1");
    ps.itail = ctx.get("itail");
    ps.l = ctx.technology().lmin;  // cascodes carry the gain burden
    const double vgs1 = internal::input_pair_vgs(
        ctx.technology(), ctx.get("vov1"), ctx.icmr_mid());
    ctx.set("vgs1", vgs1);
    ps.vsb = ctx.icmr_mid() - vgs1 - ctx.vss();
    ctx.pair = blocks::design_diff_pair(ctx.technology(), ps);
    if (!ctx.pair.feasible) {
      return core::StepStatus::fail("pair-infeasible",
                                    ctx.pair.log.to_string());
    }
    return core::StepStatus::success();
  });

  plan.add_step("design-fold-cascodes", [](OpAmpContext& ctx) {
    // Common-gate PMOS devices sized for the branch current at the fold
    // overdrive; reuse the gm-stage designer's sizing math.
    blocks::GmStageSpec gs;
    gs.role_prefix = "MFC";  // yields role "MFC6"; renamed below
    gs.type = mos::MosType::kPmos;
    const double i_branch = ctx.get("i_branch");
    const double vov_f = ctx.get("vov_fold");
    gs.gm = mos::gm_from_id_vov(i_branch, vov_f);
    gs.id = i_branch;
    gs.l = ctx.technology().lmin;
    gs.vov_max = vov_f * 1.02;
    blocks::GmStageDesign one = blocks::design_gm_stage(ctx.technology(), gs);
    if (!one.feasible) {
      return core::StepStatus::fail("fold-cascode-infeasible",
                                    one.log.to_string());
    }
    ctx.gm2 = one;  // keep for poles/gain equations
    // Materialize the two cascode devices from the single sized template.
    blocks::SizedDevice proto = one.devices.front();
    ctx.gm2.devices.clear();
    proto.role = "MFC1";
    ctx.gm2.devices.push_back(proto);
    proto.role = "MFC2";
    ctx.gm2.devices.push_back(proto);
    return core::StepStatus::success();
  });

  plan.add_step("design-load-mirror", [](OpAmpContext& ctx) {
    blocks::CurrentMirrorSpec ms;
    ms.role_prefix = "MLF";
    ms.type = mos::MosType::kNmos;
    ms.iin = ctx.get("i_branch");
    ms.iout = ctx.get("i_branch");
    ms.compliance_max =
        ctx.nmosp().vt0 + 2.0 * ctx.get("vov_mirror") + 0.02;
    ctx.load = blocks::design_mirror_style(ctx.technology(), ms,
                                           blocks::MirrorStyle::kCascode);
    if (!ctx.load.feasible) {
      return core::StepStatus::fail("load-infeasible",
                                    ctx.load.log.to_string());
    }
    return core::StepStatus::success();
  });

  plan.add_step("gain-check", [](OpAmpContext& ctx) {
    const auto& t = ctx.technology();
    const double i_branch = ctx.get("i_branch");
    const double vov_f = ctx.get("vov_fold");
    // Looking up from the output: the fold cascode multiplies the parallel
    // resistance of the pair device and the fold source.
    const double gm_c = mos::gm_from_id_vov(i_branch, vov_f);
    const double ro_c = mos::rout_sat(t.pmos.lambda_at(t.lmin), i_branch);
    const double ro_pair = ctx.pair.rout_drain;
    const double ro_fold =
        mos::rout_sat(t.pmos.lambda_at(2.0 * t.lmin), ctx.get("i_fold"));
    const double r_up = mos::rout_cascode(
        gm_c, ro_c, mos::parallel(ro_pair, ro_fold));
    const double r_out = mos::parallel(r_up, ctx.load.rout);
    const double av = ctx.get("gm1") * r_out;
    ctx.set("av", av);
    ctx.set("r_out", r_out);
    const double av_req = util::from_db20(ctx.spec.gain_min_db + 1.0);
    if (av < av_req) {
      return core::StepStatus::fail(
          "gain-unreachable",
          format("folded cascode reaches %.1f dB < required %.1f dB",
                 util::db20(av), ctx.spec.gain_min_db));
    }
    return core::StepStatus::success();
  });

  plan.add_step("design-bias", [](OpAmpContext& ctx) {
    blocks::BiasChainSpec bs;
    bs.style = ctx.opts.bias_style;
    bs.iref = std::clamp(ctx.get("itail"), util::ua(5.0), ctx.opts.iref);
    blocks::BiasTap tail;
    tail.role = "M5";
    tail.type = mos::MosType::kNmos;
    tail.iout = ctx.get("itail");
    tail.compliance_max = ctx.get("tail_compliance");
    bs.taps.push_back(tail);
    // Fold current sources: PMOS taps at the fold overdrive.
    for (const char* role : {"MF3", "MF4"}) {
      blocks::BiasTap fold;
      fold.role = role;
      fold.type = mos::MosType::kPmos;
      fold.iout = ctx.get("i_fold");
      fold.compliance_max = ctx.get("vov_fold") / 0.9;
      bs.taps.push_back(fold);
    }
    ctx.bias = blocks::design_bias_chain(ctx.technology(), bs);
    if (!ctx.bias.feasible) {
      return core::StepStatus::fail("bias-infeasible",
                                    ctx.bias.log.to_string());
    }
    ctx.out.iref = bs.iref;
    return core::StepStatus::success();
  });

  plan.add_step("pm-check", [](OpAmpContext& ctx) {
    const auto& t = ctx.technology();
    const double gbw = ctx.get("gbw_t");
    // Fold-node pole: gm_c over the capacitance parked at the fold node —
    // the cascode's Cgs plus the drain junctions of the (wide) fold source
    // and input device that also sit there.
    const double gm_c =
        mos::gm_from_id_vov(ctx.get("i_branch"), ctx.get("vov_fold"));
    const blocks::SizedDevice& cdev = ctx.gm2.devices.front();
    double c_fold = mos::cgs_sat(t, t.pmos, {cdev.w, cdev.l, cdev.m});
    const double vrev_est = 2.0;  // nominal junction reverse bias
    c_fold += mos::cdb_at(t, t.nmos, ctx.pair.devices.front().w, vrev_est);
    for (const auto& dev : ctx.bias.devices) {
      if (dev.role == "MF3") {
        c_fold += mos::cdb_at(t, t.pmos, dev.w, vrev_est);
      }
    }
    double pm = 90.0 - internal::pole_phase_deg(
                           gbw, gm_c / (util::kTwoPi * c_fold));
    // Mirror pole at the cascode-mirror diode stack.
    const double gm_m =
        mos::gm_from_id_vov(ctx.get("i_branch"), ctx.load.vov);
    const blocks::SizedDevice& mdev = ctx.load.devices.front();
    const double cgs_m = mos::cgs_sat(t, t.nmos, {mdev.w, mdev.l, mdev.m});
    pm -= internal::pole_phase_deg(gbw, gm_m / (util::kTwoPi * 2.0 * cgs_m));
    ctx.set("pm_pred", pm);
    if (ctx.spec.pm_min_deg > 0.0 && pm < ctx.spec.pm_min_deg) {
      return core::StepStatus::fail(
          "pm-shortfall", format("predicted PM %.0f deg < spec %.0f deg",
                                 pm, ctx.spec.pm_min_deg));
    }
    return core::StepStatus::success();
  });

  plan.add_step("noise-check", [](OpAmpContext& ctx) {
    // Folded cascode pays a noise tax: the fold sources and the mirror
    // both inject current noise straight into the signal path.
    const double gm1 = ctx.get("gm1");
    const double gm_fold =
        mos::gm_from_id_vov(ctx.get("i_fold"), ctx.bias.vov);
    const double gm_mirror =
        mos::gm_from_id_vov(ctx.get("i_branch"), ctx.load.vov);
    const double four_kt = 4.0 * util::kBoltzmann * util::kRoomTempK;
    const double sv = 2.0 * four_kt * (2.0 / 3.0) / gm1 *
                      (1.0 + (gm_fold + gm_mirror) / gm1);
    ctx.set("noise_pred", std::sqrt(sv));
    if (ctx.spec.noise_max > 0.0 && std::sqrt(sv) > ctx.spec.noise_max) {
      return core::StepStatus::fail(
          "noise-over",
          format("input noise %.0f nV/rtHz exceeds %.0f nV/rtHz",
                 std::sqrt(sv) * 1e9, ctx.spec.noise_max * 1e9));
    }
    return core::StepStatus::success();
  });

  plan.add_step("power-area-check", [](OpAmpContext& ctx) {
    // Supply current: the two fold sources carry everything.
    const double power =
        (2.0 * ctx.get("i_fold") + ctx.bias.ibias_total) *
        ctx.technology().supply_span();
    ctx.set("power_pred", power);
    if (ctx.spec.power_max > 0.0 && power > ctx.spec.power_max) {
      return core::StepStatus::fail(
          "power-over", format("power %.2f mW exceeds %.2f mW",
                               util::in_mw(power),
                               util::in_mw(ctx.spec.power_max)));
    }
    internal::collect_devices(ctx);
    const double area =
        blocks::devices_area(ctx.technology(), ctx.out.devices);
    ctx.set("area_pred", area);
    if (ctx.spec.area_max > 0.0 && area > ctx.spec.area_max) {
      return core::StepStatus::fail("area-over", "area budget exceeded");
    }
    return core::StepStatus::success();
  });

  plan.add_step("finalize", [](OpAmpContext& ctx) {
    const auto& t = ctx.technology();
    OpAmpDesign& out = ctx.out;
    out.itail = ctx.get("itail");
    out.i2 = ctx.get("i_fold");
    out.rref = ctx.bias.rref;
    out.ideal_bias_reference =
        ctx.bias.style == blocks::BiasStyle::kIdealReference;
    // Fold-cascode gate bias: one Vdsat+margin below the fold node.
    const double fold_level = ctx.vdd() - ctx.get("vov_fold") - 0.1;
    out.vb_cascode_p =
        fold_level - mos::vgs_for(t.pmos, ctx.get("vov_fold"), 0.0);

    core::OpAmpPerformance& p = out.predicted;
    p.gain_db = util::db20(ctx.get("av"));
    p.gbw = ctx.get("gm1") / (util::kTwoPi * ctx.spec.cload);
    p.pm_deg = ctx.get("pm_pred");
    p.slew = out.itail / ctx.spec.cload;
    p.swing_pos = ctx.vdd() - 2.0 * ctx.get("vov_fold") - ctx.mid();
    p.swing_neg = ctx.mid() - (ctx.vss() + ctx.load.compliance);
    // Cascode mirror equalizes Vds: negligible systematic offset beyond
    // the fold-node asymmetry.
    p.offset = 0.1e-3 / std::max(util::db20(ctx.get("av")), 1.0);
    p.icmr_lo = ctx.vss() + ctx.get("vgs1") + ctx.bias.vov;
    const double vt1 = ctx.get("vgs1") - ctx.get("vov1");
    p.icmr_hi = ctx.vdd() - ctx.get("vov_fold") - 0.1 + vt1;
    p.power = ctx.get("power_pred");
    p.area = ctx.get("area_pred");
    const double rtail =
        ctx.bias.tap_rout.empty() ? 0.0 : ctx.bias.tap_rout.front();
    if (rtail > 0.0) {
      p.cmrr_db = util::db20(ctx.get("gm1") * ctx.get("r_out") * 2.0 *
                             mos::gm_from_id_vov(ctx.get("i_branch"),
                                                 ctx.load.vov) *
                             rtail);
    }
    p.psrr_db = p.gain_db;
    p.noise_in = ctx.get_or("noise_pred", 0.0);
    out.feasible = true;
    return core::StepStatus::success();
  });

  // ---- rules ---------------------------------------------------------------
  const std::size_t idx_targets = plan.step_index("derive-targets");
  const std::size_t idx_input_gm = plan.step_index("input-gm");

  plan.add_rule(
      "raise-gm1-for-noise",
      [idx_input_gm](OpAmpContext& ctx, const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        if (f.code != "noise-over") return std::nullopt;
        if (ctx.bump("gm1-noise") > 3) return std::nullopt;
        const double ratio = ctx.get("noise_pred") / ctx.spec.noise_max;
        ctx.set("gm1_floor", ctx.get("gm1") * ratio * ratio * 1.1);
        return core::PatchAction::restart_at(
            idx_input_gm, "raised the input gm for noise");
      });

  plan.add_rule("raise-itail-for-gm",
                [](OpAmpContext& ctx, const core::StepFailure& f)
                    -> std::optional<core::PatchAction> {
                  if (f.code != "vov1-floor") return std::nullopt;
                  if (ctx.bump("raise-itail") > 2) return std::nullopt;
                  const double itail =
                      ctx.get("gm1") * blocks::kMinOverdrive * 1.05;
                  ctx.set("itail", itail);
                  ctx.set("i_fold", itail);
                  ctx.set("i_branch", itail / 2.0);
                  return core::PatchAction::retry_step("raised tail current");
                });

  plan.add_rule(
      "accept-first-cut-pm",
      [](OpAmpContext& ctx, const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        if (f.code != "pm-shortfall") return std::nullopt;
        const double pm = ctx.get_or("pm_pred", 0.0);
        if (pm < ctx.spec.pm_min_deg - ctx.opts.pm_grace_deg) {
          return std::nullopt;
        }
        internal::record_soft_violation(
            ctx, "pm", format("shipping first-cut design with PM %.0f deg",
                              pm));
        return core::PatchAction::proceed("accepted first-cut PM");
      });

  plan.add_rule("trim-margins-for-power",
                [idx_targets](OpAmpContext& ctx, const core::StepFailure& f)
                    -> std::optional<core::PatchAction> {
                  if (f.code != "power-over") return std::nullopt;
                  if (ctx.bump("trim-power") > 1) return std::nullopt;
                  ctx.set("target_margin", 1.0);
                  return core::PatchAction::restart_at(
                      idx_targets, "trimmed design margins to meet power");
                });

  return plan;
}

}  // namespace

OpAmpDesign design_folded_cascode(const tech::Technology& t,
                                  const core::OpAmpSpec& spec,
                                  const SynthOptions& opts) {
  OpAmpContext ctx(t, spec, opts);
  static const core::Plan<OpAmpContext> plan = build_folded_cascode_plan();
  core::ExecutorOptions exec;
  exec.rules_enabled = opts.rules_enabled;
  exec.max_patches = opts.max_patches;
  ctx.out.trace = core::execute_plan(plan, ctx, exec);
  ctx.out.feasible = ctx.out.trace.success && ctx.out.feasible;
  ctx.out.log.append(ctx.log());
  if (!ctx.out.trace.success) {
    ctx.out.log.error("style-infeasible", ctx.out.trace.abort_reason);
  }
  return std::move(ctx.out);
}

}  // namespace oasys::synth
