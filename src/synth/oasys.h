// OASYS top level: breadth-first design-style selection over the op-amp
// styles (paper Sec. 4.3: "All possible styles are designed and a selection
// among successful design styles is made based on comparison of final
// parameters such as estimated area").
#pragma once

#include "core/selector.h"
#include "synth/folded_cascode_designer.h"
#include "synth/opamp_design.h"
#include "synth/ota_designer.h"
#include "synth/two_stage_designer.h"

namespace oasys::synth {

struct SynthesisResult {
  core::OpAmpSpec spec;
  std::vector<OpAmpDesign> candidates;  // every style, feasible or not
  core::SelectionResult selection;

  bool success() const { return selection.best.has_value(); }
  // The selected design; nullptr when no style was feasible.
  const OpAmpDesign* best() const {
    return selection.best ? &candidates[*selection.best] : nullptr;
  }
};

// Designs every op-amp style for `spec` and selects the best.  The style
// designers run via exec::parallel_invoke (opts.jobs lanes); results are
// identical at every jobs setting.
SynthesisResult synthesize_opamp(const tech::Technology& t,
                                 const core::OpAmpSpec& spec,
                                 const SynthOptions& opts = {});

// Synthesizes a whole batch of specs, parallel across specs (opts.jobs
// lanes, 0 = exec::default_jobs()).  out[i] is exactly what
// synthesize_opamp(t, specs[i], opts) returns — the sweep-server shape:
// many independent spec translations per request.
std::vector<SynthesisResult> synthesize_opamp_batch(
    const tech::Technology& t, const std::vector<core::OpAmpSpec>& specs,
    const SynthOptions& opts = {});

}  // namespace oasys::synth
