// Builds the transistor-level netlist of a synthesized op amp.
//
// The builder wires the design's sized devices (looked up by role) into the
// style's topology template, covering every structural variant the plans
// can produce: simple/cascoded load mirror, telescopic input cascodes,
// cascoded tail, cascoded output sink, cascoded gain device, and the
// optional inter-stage level shifter.  Supplies, input drives, and the
// load are added by the caller (testbench or exporter), keeping the op amp
// reusable between measurement setups.
#pragma once

#include "netlist/circuit.h"
#include "synth/opamp_design.h"

namespace oasys::synth {

struct BuiltOpAmp {
  ckt::NodeId vdd = ckt::kGround;
  ckt::NodeId vss = ckt::kGround;
  ckt::NodeId inp = ckt::kGround;  // non-inverting input
  ckt::NodeId inn = ckt::kGround;  // inverting input
  ckt::NodeId out = ckt::kGround;
};

// Appends the op amp into `c` between nodes named "vdd", "vss", "inp",
// "inn", "out" (created on demand).  `inn_node`, when non-negative,
// overrides the inverting-input node — pass the output node to wire a
// unity-gain follower.  Throws std::logic_error if the design is missing a
// device role its structure flags require (an assembly bug, not a design
// failure).
BuiltOpAmp build_opamp(const OpAmpDesign& design, const tech::Technology& t,
                       ckt::Circuit& c, int inn_node = -1);

// Standalone export: op amp plus supplies, input bias sources at the spec's
// common-mode midpoint, and the specified load — ready for an external
// SPICE run.
ckt::Circuit build_standalone_opamp(const OpAmpDesign& design,
                                    const tech::Technology& t);

}  // namespace oasys::synth
