#include "synth/mismatch.h"

#include <cmath>

#include "mos/design_eqs.h"
#include "numeric/rootfind.h"
#include "spice/dc.h"
#include "synth/netlist_builder.h"
#include "util/rng.h"

namespace oasys::synth {

double predict_random_offset_sigma(const OpAmpDesign& design,
                                   const tech::Technology& t) {
  // First-stage contributors: the input pair (direct) and the load-mirror
  // pair (scaled by gm_load/gm_input).  sigma(VT) per device; pairs add in
  // power as sqrt(2) * sigma.
  const blocks::SizedDevice* m1 = design.device("M1");
  if (m1 == nullptr) return 0.0;
  const tech::MosParams& pn =
      m1->type == mos::MosType::kNmos ? t.nmos : t.pmos;
  const double gm1 = mos::gm_from_id_vov(m1->id, m1->vov);
  const double s1 = pn.sigma_vt(m1->w * m1->m, m1->l);
  double var = 2.0 * s1 * s1;

  // Load mirror: either the op-amp's "ML_out" or the folded "MLF_out".
  const blocks::SizedDevice* m3 = design.device("ML_out");
  if (m3 == nullptr) m3 = design.device("MLF_out");
  if (m3 != nullptr && gm1 > 0.0) {
    const tech::MosParams& pl =
        m3->type == mos::MosType::kNmos ? t.nmos : t.pmos;
    const double gm3 = mos::gm_from_id_vov(m3->id, m3->vov);
    const double s3 = pl.sigma_vt(m3->w * m3->m, m3->l);
    const double scale = gm3 / gm1;
    var += 2.0 * scale * scale * s3 * s3;
  }
  return std::sqrt(var);
}

MismatchResult monte_carlo_offset(const OpAmpDesign& design,
                                  const tech::Technology& t,
                                  const MismatchOptions& opts) {
  MismatchResult result;
  if (!design.feasible) {
    result.error = "design is infeasible";
    return result;
  }

  // Shared open-loop bench; per-sample we only touch the dvt fields.
  ckt::Circuit c;
  const BuiltOpAmp nodes = build_opamp(design, t, c);
  c.add_vsource("VDD", nodes.vdd, ckt::kGround, ckt::Waveform::dc(t.vdd));
  c.add_vsource("VSS", nodes.vss, ckt::kGround, ckt::Waveform::dc(t.vss));
  const double vcm =
      design.spec.icmr_lo != 0.0 || design.spec.icmr_hi != 0.0
          ? 0.5 * (design.spec.icmr_lo + design.spec.icmr_hi)
          : t.mid_supply();
  c.add_vsource("VIP", nodes.inp, ckt::kGround, ckt::Waveform::dc(vcm));
  c.add_vsource("VIN", nodes.inn, ckt::kGround, ckt::Waveform::dc(vcm));
  if (design.spec.cload > 0.0) {
    c.add_capacitor("CL", nodes.out, ckt::kGround, design.spec.cload);
  }
  const sim::MnaLayout layout(c);
  const std::size_t vip = *c.find_vsource("VIP");
  const std::size_t vin = *c.find_vsource("VIN");
  const double mid = t.mid_supply();

  std::vector<double> offsets;
  std::vector<double> warm;
  for (int sample = 0; sample < opts.samples; ++sample) {
    // Draw per-device threshold perturbations from each device's own
    // area-law sigma.  Each sample owns the counter-based stream
    // (seed, sample) — the same streams the yield subsystem draws from —
    // so a sample's perturbation is a pure function of (seed, sample
    // index), independent of how samples are partitioned or ordered.
    util::RngStream rng(opts.seed,
                        static_cast<std::uint64_t>(sample));
    for (const auto& m : c.mosfets()) {
      const tech::MosParams& p =
          m.type == mos::MosType::kNmos ? t.nmos : t.pmos;
      const double sigma =
          p.sigma_vt(m.geom.w * m.geom.m, m.geom.l);
      c.set_mosfet_dvt(m.name, sigma * rng.next_gauss());
    }

    auto out_error = [&](double vid) {
      c.vsource(vip).wave = ckt::Waveform::dc(vcm + 0.5 * vid);
      c.vsource(vin).wave = ckt::Waveform::dc(vcm - 0.5 * vid);
      sim::OpOptions o;
      o.initial_guess = warm;
      const sim::OpResult op = sim::dc_operating_point(c, t, o);
      if (!op.converged) return std::nan("");
      warm = op.solution;
      return op.voltage(layout, nodes.out) - mid;
    };
    const auto bracket = num::bracket_root(out_error, -0.05, 0.05, 8);
    if (!bracket) continue;
    num::RootOptions ro;
    ro.xtol = 1e-8;
    const auto vid =
        num::bisect(out_error, bracket->first, bracket->second, ro);
    if (!vid) continue;
    offsets.push_back(*vid);
  }

  if (offsets.size() < 3) {
    result.error = "too few converged Monte-Carlo samples";
    return result;
  }
  result.samples = static_cast<int>(offsets.size());
  double mean = 0.0;
  for (const double v : offsets) mean += v;
  mean /= offsets.size();
  double var = 0.0;
  double worst = 0.0;
  for (const double v : offsets) {
    var += (v - mean) * (v - mean);
    worst = std::max(worst, std::abs(v));
  }
  result.mean_offset = mean;
  result.sigma_offset = std::sqrt(var / (offsets.size() - 1));
  result.worst_offset = worst;
  result.ok = true;
  return result;
}

}  // namespace oasys::synth
