#include "synth/oasys.h"

#include "exec/executor.h"

namespace oasys::synth {

SynthesisResult synthesize_opamp(const tech::Technology& t,
                                 const core::OpAmpSpec& spec,
                                 const SynthOptions& opts) {
  SynthesisResult result;
  result.spec = spec;

  // Breadth-first style enumeration: the three designers are independent,
  // so they run as one parallel_invoke.  Each writes its fixed slot, which
  // keeps the candidate order (and everything downstream of it) identical
  // to the serial evaluation.
  result.candidates.resize(3);
  exec::invoke_all(
      opts.jobs,
      [&] { result.candidates[0] = design_one_stage_ota(t, spec, opts); },
      [&] { result.candidates[1] = design_two_stage(t, spec, opts); },
      [&] { result.candidates[2] = design_folded_cascode(t, spec, opts); });

  std::vector<core::StyleScore> scores;
  scores.reserve(result.candidates.size());
  for (const auto& c : result.candidates) {
    core::StyleScore s;
    s.style_name = c.style_name();
    s.feasible = c.feasible;
    s.violations = c.soft_violations;
    s.area = c.predicted.area;
    scores.push_back(std::move(s));
  }
  result.selection = core::select_style(scores);
  return result;
}

std::vector<SynthesisResult> synthesize_opamp_batch(
    const tech::Technology& t, const std::vector<core::OpAmpSpec>& specs,
    const SynthOptions& opts) {
  std::vector<SynthesisResult> out(specs.size());
  // Parallelism across specs; the per-spec style fan-out nests and
  // therefore runs inline on whichever lane picked the spec up.
  exec::parallel_for(
      specs.size(),
      [&](std::size_t i) { out[i] = synthesize_opamp(t, specs[i], opts); },
      opts.jobs);
  return out;
}

}  // namespace oasys::synth
