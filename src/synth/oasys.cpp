#include "synth/oasys.h"

namespace oasys::synth {

SynthesisResult synthesize_opamp(const tech::Technology& t,
                                 const core::OpAmpSpec& spec,
                                 const SynthOptions& opts) {
  SynthesisResult result;
  result.spec = spec;

  result.candidates.push_back(design_one_stage_ota(t, spec, opts));
  result.candidates.push_back(design_two_stage(t, spec, opts));
  result.candidates.push_back(design_folded_cascode(t, spec, opts));

  std::vector<core::StyleScore> scores;
  scores.reserve(result.candidates.size());
  for (const auto& c : result.candidates) {
    core::StyleScore s;
    s.style_name = c.style_name();
    s.feasible = c.feasible;
    s.violations = c.soft_violations;
    s.area = c.predicted.area;
    scores.push_back(std::move(s));
  }
  result.selection = core::select_style(scores);
  return result;
}

}  // namespace oasys::synth
