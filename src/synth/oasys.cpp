#include "synth/oasys.h"

#include "exec/executor.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace oasys::synth {

namespace {

// Registry handles for the synthesis front door, resolved once per process.
struct SynthMetrics {
  obs::Counter& syntheses =
      obs::Registry::global().counter("synth.syntheses");
  obs::Counter& style_attempts =
      obs::Registry::global().counter("synth.style_attempts");
  obs::Counter& feasible =
      obs::Registry::global().counter("synth.feasible_candidates");
  obs::Counter& infeasible =
      obs::Registry::global().counter("synth.infeasible_candidates");

  static SynthMetrics& get() {
    static SynthMetrics m;
    return m;
  }
};

}  // namespace

SynthesisResult synthesize_opamp(const tech::Technology& t,
                                 const core::OpAmpSpec& spec,
                                 const SynthOptions& opts) {
  SynthMetrics& metrics = SynthMetrics::get();
  metrics.syntheses.add();
  OBS_SPAN("synth/synthesize_opamp");
  SynthesisResult result;
  result.spec = spec;

  // Breadth-first style enumeration: the three designers are independent,
  // so they run as one parallel_invoke.  Each writes its fixed slot, which
  // keeps the candidate order (and everything downstream of it) identical
  // to the serial evaluation.  Each attempt gets its own span so the trace
  // timeline shows the per-style cost.
  result.candidates.resize(3);
  exec::invoke_all(
      opts.jobs,
      [&] {
        obs::Span span("style", "one_stage_ota");
        result.candidates[0] = design_one_stage_ota(t, spec, opts);
      },
      [&] {
        obs::Span span("style", "two_stage");
        result.candidates[1] = design_two_stage(t, spec, opts);
      },
      [&] {
        obs::Span span("style", "folded_cascode");
        result.candidates[2] = design_folded_cascode(t, spec, opts);
      });
  metrics.style_attempts.add(result.candidates.size());

  std::vector<core::StyleScore> scores;
  scores.reserve(result.candidates.size());
  for (const auto& c : result.candidates) {
    core::StyleScore s;
    s.style_name = c.style_name();
    s.feasible = c.feasible;
    s.violations = c.soft_violations;
    s.area = c.predicted.area;
    (c.feasible ? metrics.feasible : metrics.infeasible).add();
    scores.push_back(std::move(s));
  }
  result.selection = core::select_style(scores);
  return result;
}

std::vector<SynthesisResult> synthesize_opamp_batch(
    const tech::Technology& t, const std::vector<core::OpAmpSpec>& specs,
    const SynthOptions& opts) {
  OBS_SPAN("synth/synthesize_opamp_batch");
  std::vector<SynthesisResult> out(specs.size());
  // Parallelism across specs; the per-spec style fan-out nests and
  // therefore runs inline on whichever lane picked the spec up.
  exec::parallel_for(
      specs.size(),
      [&](std::size_t i) { out[i] = synthesize_opamp(t, specs[i], opts); },
      opts.jobs);
  return out;
}

}  // namespace oasys::synth
