#include "synth/opamp_design.h"

namespace oasys::synth {

const char* to_string(OpAmpStyle s) {
  switch (s) {
    case OpAmpStyle::kOneStageOta:
      return "one-stage OTA";
    case OpAmpStyle::kTwoStage:
      return "two-stage";
    case OpAmpStyle::kFoldedCascode:
      return "folded cascode";
  }
  return "unknown";
}

const blocks::SizedDevice* OpAmpDesign::device(const std::string& role) const {
  for (const auto& d : devices) {
    if (d.role == role) return &d;
  }
  return nullptr;
}

std::string OpAmpDesign::style_name() const {
  std::string name = to_string(style);
  if (stage1_cascode) name += " +casc1";
  if (stage2_cascode_load) name += " +cascL2";
  if (stage2_cascode_gm) name += " +cascG2";
  if (tail_cascode) name += " +cascT";
  if (has_level_shifter) name += " +ls";
  return name;
}

}  // namespace oasys::synth
