#include "synth/opamp_design.h"

#include "util/fingerprint.h"

namespace oasys::synth {

std::string canonical_string(const SynthOptions& opts) {
  util::Fingerprint fp;
  fp.field("rules_enabled", opts.rules_enabled)
      .field("max_patches", static_cast<long long>(opts.max_patches))
      .field("bias_style", static_cast<long long>(opts.bias_style))
      .field("iref", opts.iref)
      .field("pm_grace_deg", opts.pm_grace_deg)
      .field("tran_mode", static_cast<long long>(opts.tran_mode))
      .field("tran_rtol", opts.tran_rtol)
      .field("tran_atol", opts.tran_atol);
  return fp.str();
}

std::uint64_t hash(const SynthOptions& opts) {
  return util::fnv1a64(canonical_string(opts));
}

const char* to_string(OpAmpStyle s) {
  switch (s) {
    case OpAmpStyle::kOneStageOta:
      return "one-stage OTA";
    case OpAmpStyle::kTwoStage:
      return "two-stage";
    case OpAmpStyle::kFoldedCascode:
      return "folded cascode";
  }
  return "unknown";
}

const blocks::SizedDevice* OpAmpDesign::device(const std::string& role) const {
  for (const auto& d : devices) {
    if (d.role == role) return &d;
  }
  return nullptr;
}

std::string OpAmpDesign::style_name() const {
  std::string name = to_string(style);
  if (stage1_cascode) name += " +casc1";
  if (stage2_cascode_load) name += " +cascL2";
  if (stage2_cascode_gm) name += " +cascG2";
  if (tail_cascode) name += " +cascT";
  if (has_level_shifter) name += " +ls";
  return name;
}

}  // namespace oasys::synth
