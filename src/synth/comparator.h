// Comparator synthesis — the paper's other named extension ("more
// sub-block types (e.g., comparators)").
//
// The comparator reuses the op-amp hierarchy's sub-blocks (differential
// pair, mirror load, tail source, bias chain) under a different
// translation plan: the block is used open loop, so there is no
// compensation or phase-margin goal at all; instead the plan designs to
// *resolution* (the smallest input overdrive that must produce a valid
// logic swing) and *propagation delay* (slewing plus linear-regeneration
// time).  This is the framework's reuse story made concrete: one set of
// sub-block designers, two very different block-level plans.
#pragma once

#include "core/spec.h"
#include "synth/opamp_design.h"
#include "synth/testbench.h"
#include "tech/technology.h"

namespace oasys::synth {

struct ComparatorSpec {
  std::string name;
  double resolution = 0.0;   // input overdrive to resolve [V]
  double tprop_max = 0.0;    // propagation delay bound at `resolution` [s]
  double cload = 0.0;        // [F]
  // Output must reach at least out_high and at most out_low (absolute
  // volts) under +/-resolution drive.
  double out_high = 0.0;
  double out_low = 0.0;
  double icmr_lo = 0.0;      // [V]
  double icmr_hi = 0.0;
  double power_max = 0.0;    // [W]; 0 = unconstrained

  util::DiagnosticLog validate() const;
  std::string to_string() const;
};

struct ComparatorDesign {
  ComparatorSpec spec;
  bool feasible = false;
  // The structural result reuses the op-amp representation (the netlist
  // builder renders it; styles kOneStageOta with optional cascoding).
  OpAmpDesign amp;

  // Comparator-axis predictions:
  double gain_db = 0.0;
  double delay = 0.0;        // predicted propagation delay [s]
  double offset = 0.0;       // systematic offset (eats into resolution) [V]
  double power = 0.0;
  double area = 0.0;
};

ComparatorDesign design_comparator(const tech::Technology& t,
                                   const ComparatorSpec& spec,
                                   const SynthOptions& opts = {});

// Transient verification: preset the input a resolution below the trip
// point, step it a resolution above, and time the output's crossing of
// mid-supply (and symmetrically for the falling direction).
struct MeasuredComparator {
  bool ok = false;
  std::string error;
  double delay_rising = 0.0;   // [s]
  double delay_falling = 0.0;  // [s]
  double out_high = 0.0;       // settled levels under +/-resolution [V]
  double out_low = 0.0;
  double offset = 0.0;         // from the op-amp offset search [V]
  double power = 0.0;
};

MeasuredComparator measure_comparator(const ComparatorDesign& design,
                                      const tech::Technology& t);

}  // namespace oasys::synth
