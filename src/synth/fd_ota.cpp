#include "synth/fd_ota.h"

#include <algorithm>
#include <cmath>

#include "numeric/interpolate.h"
#include "spice/ac.h"
#include "spice/dc.h"
#include "spice/measure.h"
#include "spice/tran.h"
#include "synth/designer_common.h"
#include "util/text.h"

namespace oasys::synth {

using util::format;

const blocks::SizedDevice* FdOtaDesign::device(
    const std::string& role) const {
  for (const auto& d : devices) {
    if (d.role == role) return &d;
  }
  return nullptr;
}

namespace {

struct FdContext : core::DesignContext {
  FdContext(const tech::Technology& t, const core::OpAmpSpec& s,
            const SynthOptions& o)
      : core::DesignContext(t), spec(s), opts(o) {
    out.spec = s;
  }
  core::OpAmpSpec spec;
  SynthOptions opts;
  FdOtaDesign out;
  blocks::DiffPairDesign pair;
  blocks::BiasChainDesign bias;

  double vdd() const { return technology().vdd; }
  double vss() const { return technology().vss; }
  double mid() const { return technology().mid_supply(); }
  double icmr_mid() const {
    return spec.icmr_lo != 0.0 || spec.icmr_hi != 0.0
               ? 0.5 * (spec.icmr_lo + spec.icmr_hi)
               : mid();
  }
};

core::Plan<FdContext> build_fd_plan() {
  core::Plan<FdContext> plan("fully-differential-ota");

  plan.add_step("derive-targets", [](FdContext& ctx) {
    const double margin = ctx.get_or("target_margin", 1.15);
    ctx.set("gbw_t", std::max(ctx.spec.gbw_min, util::khz(100.0)) * margin);
    ctx.set("sr_t", ctx.spec.slew_min * margin);
    return core::StepStatus::success();
  });

  plan.add_step("tail-current", [](FdContext& ctx) {
    // Each output's drive is limited to itail/2 (fixed load current), so
    // the per-side slew is itail / (2 CL).
    const double itail = std::max(
        2.0 * ctx.get("sr_t") * ctx.spec.cload, util::ua(4.0));
    ctx.set("itail", itail);
    return core::StepStatus::success();
  });

  plan.add_step("input-gm", [](FdContext& ctx) {
    double gm1 = util::kTwoPi * ctx.get("gbw_t") * ctx.spec.cload;
    gm1 = std::max(gm1, ctx.get("itail") / 0.6);
    gm1 = std::max(gm1, ctx.get_or("gm1_floor", 0.0));
    ctx.set("gm1", gm1);
    const double vov1 = ctx.get("itail") / gm1;
    if (vov1 < blocks::kMinOverdrive) {
      return core::StepStatus::fail(
          "vov1-floor", format("pair overdrive %.0f mV below floor",
                               util::in_mv(vov1)));
    }
    ctx.set("vov1", vov1);
    return core::StepStatus::success();
  });

  plan.add_step("load-headroom", [](FdContext& ctx) {
    // Per-side swing high: vdd - Vdsat of the load.
    const double budget = ctx.spec.swing_pos > 0.0
                              ? 0.9 * (ctx.vdd() - ctx.mid() -
                                       ctx.spec.swing_pos)
                              : 0.30;
    const double vov3 = std::clamp(budget, 0.0, 0.4);
    if (vov3 < blocks::kMinOverdrive) {
      return core::StepStatus::fail(
          "swing-high",
          format("per-side swing +%.2f V leaves %.0f mV for the load",
                 ctx.spec.swing_pos, util::in_mv(vov3)));
    }
    ctx.set("vov3", vov3);
    // Swing low: the pair saturation floor, one VT below the input CM.
    const double vgs1 = internal::input_pair_vgs(
        ctx.technology(), ctx.get("vov1"), ctx.icmr_mid());
    ctx.set("vgs1", vgs1);
    const double out_low = ctx.icmr_mid() - (vgs1 - ctx.get("vov1"));
    if (ctx.spec.swing_neg > 0.0 &&
        ctx.mid() - out_low < ctx.spec.swing_neg) {
      return core::StepStatus::fail(
          "swing-low",
          format("per-side swing floor %.2f V misses -%.2f V", out_low,
                 ctx.spec.swing_neg));
    }
    ctx.set("out_low", out_low);
    return core::StepStatus::success();
  });

  plan.add_step("gain-length", [](FdContext& ctx) {
    const auto& t = ctx.technology();
    const double av_req = util::from_db20(ctx.spec.gain_min_db + 1.0);
    // Per-side: gm1 * (ro1 || ro3); both lengths chosen together.
    const double lambda_tot = 2.0 / (av_req * ctx.get("vov1"));
    double l = std::max((t.nmos.lambda_l + t.pmos.lambda_l) / lambda_tot,
                        t.lmin);
    if (l > blocks::max_length(t)) {
      ctx.set("l_needed", l);
      return core::StepStatus::fail(
          "gain-shortfall",
          format("differential gain %.0f dB needs L = %.1f um > limit",
                 ctx.spec.gain_min_db, util::in_um(l)));
    }
    ctx.set("l1", l);
    return core::StepStatus::success();
  });

  plan.add_step("design-pair", [](FdContext& ctx) {
    blocks::DiffPairSpec ps;
    ps.role_prefix = "M";
    ps.type = mos::MosType::kNmos;
    ps.gm = ctx.get("gm1");
    ps.itail = ctx.get("itail");
    ps.l = ctx.get("l1");
    ps.vsb = ctx.icmr_mid() - ctx.get("vgs1") - ctx.vss();
    ctx.pair = blocks::design_diff_pair(ctx.technology(), ps);
    if (!ctx.pair.feasible) {
      return core::StepStatus::fail("pair-infeasible",
                                    ctx.pair.log.to_string());
    }
    return core::StepStatus::success();
  });

  plan.add_step("size-cm-network", [](FdContext& ctx) {
    const auto& t = ctx.technology();
    // Sense followers: modest bias, shifted reference computed from their
    // VGS at that bias.
    const double i_sf = util::ua(10.0);
    ctx.set("i_sf", i_sf);
    const double vov_sf = 0.25;
    ctx.set("vov_sf", vov_sf);
    // Follower output sits ~ mid - vgs_sf (body effect: source well below
    // mid-supply on +-5 V rails).
    const double vsb_sf =
        std::max(t.mid_supply() - mos::vgs_for(t.nmos, vov_sf, 0.0) -
                     t.vss,
                 0.0);
    const double vgs_sf = mos::vgs_for(t.nmos, vov_sf, vsb_sf);
    ctx.set("vgs_sf", vgs_sf);
    ctx.out.vcm_ref = t.mid_supply() - vgs_sf;
    // Averaging resistors: light load for the followers, and small enough
    // that the sense pole (Rcm/2 into the CMFB gate) sits well above the
    // CM loop's crossover.
    ctx.out.rcm = 200e3;
    // CMFB amplifier: a quarter of the tail current is plenty of loop gm.
    ctx.set("i_cmfb", std::max(0.25 * ctx.get("itail"), util::ua(5.0)));
    // The CMFB amp is diode-loaded, so the control node (vcmfb) is low
    // impedance and the loop's dominant pole is the output/CL pole — no
    // explicit compensation capacitor is needed.
    ctx.out.ccm = 0.0;
    return core::StepStatus::success();
  });

  plan.add_step("design-bias", [](FdContext& ctx) {
    blocks::BiasChainSpec bs;
    bs.style = ctx.opts.bias_style;
    bs.iref = std::clamp(ctx.get("itail"), util::ua(5.0), ctx.opts.iref);
    auto tap = [&](const char* role, double i) {
      blocks::BiasTap b;
      b.role = role;
      b.type = mos::MosType::kNmos;
      b.iout = i;
      b.compliance_max = 0.5;
      bs.taps.push_back(b);
    };
    tap("M5", ctx.get("itail"));
    tap("SFB1", ctx.get("i_sf"));
    tap("SFB2", ctx.get("i_sf"));
    tap("MC5", ctx.get("i_cmfb"));
    ctx.bias = blocks::design_bias_chain(ctx.technology(), bs);
    if (!ctx.bias.feasible) {
      return core::StepStatus::fail("bias-infeasible",
                                    ctx.bias.log.to_string());
    }
    ctx.out.iref = bs.iref;
    return core::StepStatus::success();
  });

  plan.add_step("assemble-devices", [](FdContext& ctx) {
    const auto& t = ctx.technology();
    auto& d = ctx.out.devices;
    d.clear();
    d.insert(d.end(), ctx.pair.devices.begin(), ctx.pair.devices.end());

    // Loads: PMOS current sources at vov3, gate driven by the CM loop.
    const double id3 = ctx.get("itail") / 2.0;
    const double vov3 = ctx.get("vov3");
    const double l3 = ctx.get("l1");
    const double w3 = std::max(
        mos::width_for_current(t, t.pmos, l3, id3, vov3), t.wmin);
    d.push_back({"ML3", mos::MosType::kPmos, w3, l3, 1, id3, vov3});
    d.push_back({"ML4", mos::MosType::kPmos, w3, l3, 1, id3, vov3});

    // Sense followers at minimum length.
    const double i_sf = ctx.get("i_sf");
    const double w_sf = std::max(
        mos::width_for_current(t, t.nmos, t.lmin, i_sf,
                               ctx.get("vov_sf")),
        t.wmin);
    d.push_back({"SF1", mos::MosType::kNmos, w_sf, t.lmin, 1, i_sf,
                 ctx.get("vov_sf")});
    d.push_back({"SF2", mos::MosType::kNmos, w_sf, t.lmin, 1, i_sf,
                 ctx.get("vov_sf")});

    // CMFB amplifier: NMOS pair + PMOS mirror, all at 2x Lmin.
    const double i_cm = ctx.get("i_cmfb");
    const double id_c = i_cm / 2.0;
    const double vov_c = 0.2;
    const double lc = 2.0 * t.lmin;
    const double w_c = std::max(
        mos::width_for_current(t, t.nmos, lc, id_c, vov_c), t.wmin);
    const double w_cm = std::max(
        mos::width_for_current(t, t.pmos, lc, id_c, vov3), t.wmin);
    d.push_back({"MC1", mos::MosType::kNmos, w_c, lc, 1, id_c, vov_c});
    d.push_back({"MC2", mos::MosType::kNmos, w_c, lc, 1, id_c, vov_c});
    d.push_back({"MC3", mos::MosType::kPmos, w_cm, lc, 1, id_c, vov3});
    d.push_back({"MC4", mos::MosType::kPmos, w_cm, lc, 1, id_c, vov3});

    // Bias chain devices (taps M5, SFB1, SFB2, MC5 and MB1...).
    d.insert(d.end(), ctx.bias.devices.begin(), ctx.bias.devices.end());
    return core::StepStatus::success();
  });

  plan.add_step("finalize", [](FdContext& ctx) {
    const auto& t = ctx.technology();
    FdOtaDesign& out = ctx.out;
    out.itail = ctx.get("itail");
    out.i_sf = ctx.get("i_sf");
    out.i_cmfb = ctx.get("i_cmfb");
    out.rref = ctx.bias.rref;
    out.ideal_bias_reference =
        ctx.bias.style == blocks::BiasStyle::kIdealReference;

    core::OpAmpPerformance& p = out.predicted;
    const double id1 = out.itail / 2.0;
    const double ro1 = ctx.pair.rout_drain;
    const double ro3 = mos::rout_sat(t.pmos.lambda_at(ctx.get("l1")), id1);
    p.gain_db = util::db20(ctx.get("gm1") * mos::parallel(ro1, ro3));
    p.gbw = ctx.get("gm1") / (util::kTwoPi * ctx.spec.cload);
    p.pm_deg = 85.0;  // single-stage, load compensated
    p.slew = out.itail / (2.0 * ctx.spec.cload);
    // With the CMFB holding the common mode at mid-supply, the outputs
    // move anti-symmetrically: each side's swing is bounded by the tighter
    // of the up-room and the down-room.
    const double up_room = ctx.vdd() - ctx.get("vov3") - ctx.mid();
    const double down_room = ctx.mid() - ctx.get("out_low");
    p.swing_pos = std::min(up_room, down_room);
    p.swing_neg = p.swing_pos;
    p.offset = 0.0;  // differential symmetry: no systematic offset
    p.icmr_lo = ctx.vss() + ctx.get("vgs1") + ctx.bias.vov;
    p.icmr_hi = ctx.vdd() - ctx.get("vov3") - 0.1 +
                (ctx.get("vgs1") - ctx.get("vov1"));
    const double chain =
        out.itail + 2.0 * out.i_sf + out.i_cmfb + ctx.bias.ibias_total;
    p.power = chain * t.supply_span();
    p.area = blocks::devices_area(t, out.devices) +
             t.capacitor_area(out.ccm);
    if (ctx.spec.power_max > 0.0 && p.power > ctx.spec.power_max) {
      return core::StepStatus::fail(
          "power-over", format("power %.2f mW exceeds budget",
                               util::in_mw(p.power)));
    }
    out.feasible = true;
    return core::StepStatus::success();
  });

  // ---- rules ----------------------------------------------------------------
  const std::size_t idx_targets = plan.step_index("derive-targets");
  const std::size_t plan_input_gm = plan.step_index("input-gm");

  plan.add_rule("raise-itail-for-gm",
                [](FdContext& ctx, const core::StepFailure& f)
                    -> std::optional<core::PatchAction> {
                  if (f.code != "vov1-floor") return std::nullopt;
                  if (ctx.bump("raise-itail") > 2) return std::nullopt;
                  ctx.set("itail",
                          ctx.get("gm1") * blocks::kMinOverdrive * 1.05);
                  return core::PatchAction::retry_step("raised tail current");
                });

  // Gain unreachable at the slew-driven overdrive: spend width (more gm at
  // the same current lowers Vov, which buys gain per unit channel length).
  plan.add_rule(
      "lower-vov-for-gain",
      [plan_input_gm](FdContext& ctx, const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        if (f.code != "gain-shortfall") return std::nullopt;
        if (ctx.bump("lower-vov") > 2) return std::nullopt;
        const double l_needed = ctx.get("l_needed");
        const double l_max = blocks::max_length(ctx.technology());
        const double vov_target =
            ctx.get("vov1") * (l_max / l_needed) * 0.95;
        if (vov_target < blocks::kMinOverdrive) {
          return core::PatchAction::abort(
              "gain needs an overdrive below the square-law floor");
        }
        ctx.set("gm1_floor", ctx.get("itail") / vov_target);
        return core::PatchAction::restart_at(
            plan_input_gm, "widened the pair (lower Vov) to buy gain");
      });

  plan.add_rule("trim-margins-for-power",
                [idx_targets](FdContext& ctx, const core::StepFailure& f)
                    -> std::optional<core::PatchAction> {
                  if (f.code != "power-over") return std::nullopt;
                  if (ctx.bump("trim-power") > 1) return std::nullopt;
                  ctx.set("target_margin", 1.0);
                  return core::PatchAction::restart_at(
                      idx_targets, "trimmed design margins to meet power");
                });

  return plan;
}

}  // namespace

FdOtaDesign design_fd_ota(const tech::Technology& t,
                          const core::OpAmpSpec& spec,
                          const SynthOptions& opts) {
  FdContext ctx(t, spec, opts);
  static const core::Plan<FdContext> plan = build_fd_plan();
  core::ExecutorOptions exec;
  exec.rules_enabled = opts.rules_enabled;
  exec.max_patches = opts.max_patches;
  ctx.out.trace = core::execute_plan(plan, ctx, exec);
  ctx.out.feasible = ctx.out.trace.success && ctx.out.feasible;
  ctx.out.log.append(ctx.log());
  if (!ctx.out.trace.success) {
    ctx.out.log.error("style-infeasible", ctx.out.trace.abort_reason);
  }
  return std::move(ctx.out);
}

BuiltFdOta build_fd_ota(const FdOtaDesign& d, const tech::Technology& t,
                        ckt::Circuit& c) {
  (void)t;
  auto need = [&](const char* role) -> const blocks::SizedDevice& {
    const blocks::SizedDevice* dev = d.device(role);
    if (dev == nullptr) {
      throw std::logic_error(std::string("fd design missing role ") + role);
    }
    return *dev;
  };
  BuiltFdOta nodes;
  nodes.vdd = c.node("vdd");
  nodes.vss = c.node("vss");
  nodes.inp = c.node("inp");
  nodes.inn = c.node("inn");
  nodes.outp = c.node("outp");
  nodes.outm = c.node("outm");
  const auto tail = c.node("tail");
  const auto vbn = c.node("vbn");
  const auto vcmfb = c.node("vcmfb");
  const auto vsense = c.node("vsense");
  const auto sfp = c.node("sfp");
  const auto sfm = c.node("sfm");

  auto add = [&](const blocks::SizedDevice& dev, ckt::NodeId dr,
                 ckt::NodeId g, ckt::NodeId s, ckt::NodeId b) {
    c.add_mosfet(dev.role, dr, g, s, b, dev.type, dev.w, dev.l, dev.m);
  };

  // Bias chain.
  add(need("MB1"), vbn, vbn, nodes.vss, nodes.vss);
  if (d.ideal_bias_reference || d.rref <= 0.0) {
    c.add_isource("IREF", nodes.vdd, vbn, ckt::Waveform::dc(d.iref));
  } else {
    c.add_resistor("RREF", nodes.vdd, vbn, d.rref);
  }
  add(need("M5"), tail, vbn, nodes.vss, nodes.vss);
  add(need("SFB1"), sfm, vbn, nodes.vss, nodes.vss);
  add(need("SFB2"), sfp, vbn, nodes.vss, nodes.vss);

  // Signal path: raising inp raises i1, pulling outm down -> positive
  // differential gain from (inp - inn) to (outp - outm).
  add(need("M1"), nodes.outm, nodes.inp, tail, nodes.vss);
  add(need("M2"), nodes.outp, nodes.inn, tail, nodes.vss);
  add(need("ML3"), nodes.outm, vcmfb, nodes.vdd, nodes.vdd);
  add(need("ML4"), nodes.outp, vcmfb, nodes.vdd, nodes.vdd);

  // CM sense: followers buffer the outputs into the averaging resistors.
  add(need("SF1"), nodes.vdd, nodes.outm, sfm, nodes.vss);
  add(need("SF2"), nodes.vdd, nodes.outp, sfp, nodes.vss);
  c.add_resistor("RCM1", sfm, vsense, d.rcm);
  c.add_resistor("RCM2", sfp, vsense, d.rcm);

  // CMFB amplifier: compares the sensed CM to the shifted reference.
  // Diode-loaded on both sides: the vcmfb node is low impedance (1/gm of
  // MC4), so the loads mirror MC4's branch current and the CM loop's
  // dominant pole stays at the outputs (sensed CM up -> MC2 current down
  // -> |VSG(MC4)| down -> vcmfb up -> load current down -> CM down).
  const auto q1 = c.node("q1");
  const auto ctail = c.node("ctail");
  add(need("MC5"), ctail, vbn, nodes.vss, nodes.vss);
  add(need("MC1"), q1, vsense, ctail, nodes.vss);
  add(need("MC2"), vcmfb, c.node("vcmref"), ctail, nodes.vss);
  add(need("MC3"), q1, q1, nodes.vdd, nodes.vdd);
  add(need("MC4"), vcmfb, vcmfb, nodes.vdd, nodes.vdd);
  c.add_vsource("VCMREF", c.node("vcmref"), ckt::kGround,
                ckt::Waveform::dc(d.vcm_ref));
  if (d.ccm > 0.0) {
    c.add_capacitor("CCM", vcmfb, nodes.vss, d.ccm);
  }
  return nodes;
}

MeasuredFdOta measure_fd_ota(const FdOtaDesign& design,
                             const tech::Technology& t) {
  MeasuredFdOta m;
  if (!design.feasible) {
    m.error = "design is infeasible";
    return m;
  }
  ckt::Circuit c;
  const BuiltFdOta nodes = build_fd_ota(design, t, c);
  c.add_vsource("VDD", nodes.vdd, ckt::kGround, ckt::Waveform::dc(t.vdd));
  c.add_vsource("VSS", nodes.vss, ckt::kGround, ckt::Waveform::dc(t.vss));
  const double vcm =
      design.spec.icmr_lo != 0.0 || design.spec.icmr_hi != 0.0
          ? 0.5 * (design.spec.icmr_lo + design.spec.icmr_hi)
          : t.mid_supply();
  c.add_vsource("VIP", nodes.inp, ckt::kGround,
                ckt::Waveform::ac(vcm, 0.5, 0.0));
  c.add_vsource("VIN", nodes.inn, ckt::kGround,
                ckt::Waveform::ac(vcm, 0.5, 180.0));
  if (design.spec.cload > 0.0) {
    c.add_capacitor("CLP", nodes.outp, ckt::kGround, design.spec.cload);
    c.add_capacitor("CLM", nodes.outm, ckt::kGround, design.spec.cload);
  }
  const sim::MnaLayout layout(c);

  const sim::OpResult op = sim::dc_operating_point(c, t);
  if (!op.converged) {
    m.error = "operating point did not converge";
    return m;
  }
  const double mid = t.mid_supply();
  const double cm_level = 0.5 * (op.voltage(layout, nodes.outp) +
                                 op.voltage(layout, nodes.outm));
  m.cm_error = std::abs(cm_level - mid);

  // Differential AC: v(outp) - v(outm) under anti-phase drive.
  const double fmin = std::max(
      design.predicted.gbw /
          util::from_db20(design.predicted.gain_db) / 30.0,
      1e-2);
  const auto freqs = num::logspace(fmin, 1e9, 101);
  const sim::AcResult ac = sim::ac_analysis(c, t, op, freqs);
  if (!ac.ok) {
    m.error = "AC analysis failed: " + ac.error;
    return m;
  }
  sim::BodeSeries bode;
  bode.freqs = freqs;
  double prev_phase = 0.0;
  bool first = true;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    const std::complex<double> vd = ac.voltage(layout, i, nodes.outp) -
                                    ac.voltage(layout, i, nodes.outm);
    bode.gain_db.push_back(util::db20(std::abs(vd)));
    double ph = util::deg(std::arg(vd));
    if (!first) {
      while (ph - prev_phase > 180.0) ph -= 360.0;
      while (ph - prev_phase < -180.0) ph += 360.0;
    }
    bode.phase_deg.push_back(ph);
    prev_phase = ph;
    first = false;
  }
  const sim::LoopMetrics lm = sim::loop_metrics(bode);
  m.gain_db = lm.dc_gain_db;
  m.gbw = lm.unity_gain_freq.value_or(0.0);
  m.pm_deg = lm.phase_margin_deg.value_or(0.0);

  // CMRR: in-phase drive, differential output.
  {
    ckt::Circuit& cc = c;
    cc.vsource(*cc.find_vsource("VIN")).wave =
        cc.vsource(*cc.find_vsource("VIN")).wave.with_ac(0.5, 0.0);
    const sim::AcResult accm = sim::ac_analysis(cc, t, op, {fmin});
    if (accm.ok) {
      const double acm = std::abs(accm.voltage(layout, 0, nodes.outp) -
                                  accm.voltage(layout, 0, nodes.outm));
      if (acm > 0.0) m.cmrr_db = m.gain_db - util::db20(acm);
    }
    cc.vsource(*cc.find_vsource("VIN")).wave =
        cc.vsource(*cc.find_vsource("VIN")).wave.with_ac(0.5, 180.0);
  }

  // Swing: large differential overdrive.
  {
    sim::OpOptions oo;
    oo.initial_guess = op.solution;
    c.vsource(*c.find_vsource("VIP")).wave = ckt::Waveform::dc(vcm + 0.25);
    c.vsource(*c.find_vsource("VIN")).wave = ckt::Waveform::dc(vcm - 0.25);
    const sim::OpResult hi = sim::dc_operating_point(c, t, oo);
    if (hi.converged) {
      m.swing_pos = hi.voltage(layout, nodes.outp) - mid;
      m.swing_neg = mid - hi.voltage(layout, nodes.outm);
    }
    c.vsource(*c.find_vsource("VIP")).wave =
        ckt::Waveform::ac(vcm, 0.5, 0.0);
    c.vsource(*c.find_vsource("VIN")).wave =
        ckt::Waveform::ac(vcm, 0.5, 180.0);
  }

  // CM-loop stability: a common-mode input step must settle back without
  // sustained ringing.
  {
    ckt::Circuit tc;
    const BuiltFdOta tn = build_fd_ota(design, t, tc);
    tc.add_vsource("VDD", tn.vdd, ckt::kGround, ckt::Waveform::dc(t.vdd));
    tc.add_vsource("VSS", tn.vss, ckt::kGround, ckt::Waveform::dc(t.vss));
    const double t_settle = 30.0 / std::max(m.gbw, 1e5);
    tc.add_vsource("VSTEP", tn.inp, ckt::kGround,
                   ckt::Waveform::pulse(vcm, vcm + 0.2, t_settle * 0.1,
                                        1e-9, 1e-9, t_settle * 2.0,
                                        t_settle * 4.0));
    // The other input follows the same CM step.
    tc.add_vsource("VSTEP2", tn.inn, ckt::kGround,
                   ckt::Waveform::pulse(vcm, vcm + 0.2, t_settle * 0.1,
                                        1e-9, 1e-9, t_settle * 2.0,
                                        t_settle * 4.0));
    if (design.spec.cload > 0.0) {
      tc.add_capacitor("CLP", tn.outp, ckt::kGround, design.spec.cload);
      tc.add_capacitor("CLM", tn.outm, ckt::kGround, design.spec.cload);
    }
    const sim::MnaLayout tl(tc);
    const sim::OpResult top_ = sim::dc_operating_point(tc, t);
    if (top_.converged) {
      sim::TranOptions to;
      to.tstop = t_settle;
      to.dt = t_settle / 500.0;
      const sim::TranResult tr = sim::transient(tc, t, top_, to);
      if (tr.ok) {
        // CM of the outputs settles within 100 mV of its start.
        const double cm0 = 0.5 * (tr.voltage(tl, 0, tn.outp) +
                                  tr.voltage(tl, 0, tn.outm));
        const std::size_t last = tr.time.size() - 1;
        const double cm1 = 0.5 * (tr.voltage(tl, last, tn.outp) +
                                  tr.voltage(tl, last, tn.outm));
        m.cm_loop_settles = std::abs(cm1 - cm0) < 0.25;
      }
    }
  }

  m.ok = true;
  return m;
}

}  // namespace oasys::synth
