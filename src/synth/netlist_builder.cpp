#include "synth/netlist_builder.h"

#include <stdexcept>

#include "util/units.h"

namespace oasys::synth {

namespace {

// Looks up a required sized device; missing roles indicate a designer bug.
const blocks::SizedDevice& need(const OpAmpDesign& d,
                                const std::string& role) {
  const blocks::SizedDevice* dev = d.device(role);
  if (dev == nullptr) {
    throw std::logic_error("design is missing required device role '" +
                           role + "'");
  }
  return *dev;
}

class Builder {
 public:
  Builder(const OpAmpDesign& design, const tech::Technology& t,
          ckt::Circuit& c)
      : d_(design), t_(t), c_(c) {}

  BuiltOpAmp build(int inn_override) {
    nodes_.vdd = c_.node("vdd");
    nodes_.vss = c_.node("vss");
    nodes_.inp = c_.node("inp");
    nodes_.out = c_.node("out");
    nodes_.inn = inn_override >= 0 ? inn_override : c_.node("inn");

    build_bias();
    switch (d_.style) {
      case OpAmpStyle::kOneStageOta:
        build_input_stage(nodes_.out, /*inp_gate=*/nodes_.inp,
                          /*inn_gate=*/nodes_.inn);
        break;
      case OpAmpStyle::kTwoStage: {
        // Two-stage polarity: the mirror inverts the M1 path, and the PMOS
        // common-source stage inverts again, so the non-inverting input
        // drives M2.
        const ckt::NodeId x1 = c_.node("x1");
        build_input_stage(x1, /*inp_gate=*/nodes_.inn,
                          /*inn_gate=*/nodes_.inp);
        build_second_stage(x1);
        break;
      }
      case OpAmpStyle::kFoldedCascode:
        build_folded_cascode();
        break;
    }
    return nodes_;
  }

 private:
  void add_mos(const blocks::SizedDevice& dev, ckt::NodeId drain,
               ckt::NodeId gate, ckt::NodeId source, ckt::NodeId bulk) {
    c_.add_mosfet(dev.role, drain, gate, source, bulk, dev.type, dev.w,
                  dev.l, dev.m);
  }
  ckt::NodeId nbody() const { return nodes_.vss; }
  ckt::NodeId pbody() const { return nodes_.vdd; }

  void build_bias() {
    const ckt::NodeId vbn = c_.node("vbn");
    ckt::NodeId vbtop = vbn;

    add_mos(need(d_, "MB1"), vbn, vbn, nodes_.vss, nbody());
    if (d_.device("MB1C") != nullptr) {
      const ckt::NodeId vbn2 = c_.node("vbn2");
      add_mos(need(d_, "MB1C"), vbn2, vbn2, vbn, nbody());
      vbtop = vbn2;
    }
    if (d_.ideal_bias_reference || d_.rref <= 0.0) {
      c_.add_isource("IREF", nodes_.vdd, vbtop,
                     ckt::Waveform::dc(d_.iref));
    } else {
      c_.add_resistor("RREF", nodes_.vdd, vbtop, d_.rref);
    }
    if (d_.device("MB2") != nullptr) {
      const ckt::NodeId vbp = c_.node("vbp");
      add_mos(need(d_, "MB2"), vbp, vbn, nodes_.vss, nbody());
      add_mos(need(d_, "MB3"), vbp, vbp, nodes_.vdd, pbody());
    }
    if (d_.vb_cascode_n) {
      c_.add_vsource("VBCN", c_.node("vbcn"), ckt::kGround,
                     ckt::Waveform::dc(*d_.vb_cascode_n));
    }
    if (d_.vb_cascode_p) {
      c_.add_vsource("VBCP", c_.node("vbcp"), ckt::kGround,
                     ckt::Waveform::dc(*d_.vb_cascode_p));
    }
  }

  // First stage into `stage_out`.  `inp_gate`/`inn_gate` are the gates of
  // M1/M2 respectively (style-dependent polarity handled by the caller).
  void build_input_stage(ckt::NodeId stage_out, ckt::NodeId inp_gate,
                         ckt::NodeId inn_gate) {
    const ckt::NodeId tail = c_.node("tail");
    const ckt::NodeId vbn = c_.node("vbn");

    // Tail current source.
    if (d_.tail_cascode) {
      const ckt::NodeId n5 = c_.node("n5");
      add_mos(need(d_, "M5"), n5, vbn, nodes_.vss, nbody());
      add_mos(need(d_, "M5C"), tail, c_.node("vbn2"), n5, nbody());
    } else {
      add_mos(need(d_, "M5"), tail, vbn, nodes_.vss, nbody());
    }

    // Mirror input node: where the M1 branch meets the load.
    const ckt::NodeId mg = c_.node("mg");
    if (d_.stage1_cascode) {
      const ckt::NodeId d1 = c_.node("d1");
      const ckt::NodeId d2 = c_.node("d2");
      const ckt::NodeId vbcn = c_.node("vbcn");
      add_mos(need(d_, "M1"), d1, inp_gate, tail, nbody());
      add_mos(need(d_, "M2"), d2, inn_gate, tail, nbody());
      add_mos(need(d_, "M1C"), mg, vbcn, d1, nbody());
      add_mos(need(d_, "M2C"), stage_out, vbcn, d2, nbody());
      // Self-biased cascode load mirror (PMOS), output onto stage_out.
      const ckt::NodeId la = c_.node("la");
      const ckt::NodeId lc = c_.node("lc");
      add_mos(need(d_, "ML_in"), la, la, nodes_.vdd, pbody());
      add_mos(need(d_, "ML_inc"), mg, mg, la, pbody());
      add_mos(need(d_, "ML_out"), lc, la, nodes_.vdd, pbody());
      add_mos(need(d_, "ML_outc"), stage_out, mg, lc, pbody());
    } else {
      add_mos(need(d_, "M1"), mg, inp_gate, tail, nbody());
      add_mos(need(d_, "M2"), stage_out, inn_gate, tail, nbody());
      add_mos(need(d_, "ML_in"), mg, mg, nodes_.vdd, pbody());
      add_mos(need(d_, "ML_out"), stage_out, mg, nodes_.vdd, pbody());
    }
  }

  void build_second_stage(ckt::NodeId x1) {
    const ckt::NodeId vbn = c_.node("vbn");

    // Optional level shifter between x1 and the gain device's gate.
    ckt::NodeId gate6 = x1;
    if (d_.has_level_shifter) {
      const ckt::NodeId x2 = c_.node("x2");
      // PMOS follower, body tied to its own source (separate well).
      add_mos(need(d_, "MLS"), nodes_.vss, x1, x2, x2);
      add_mos(need(d_, "MLSB"), x2, c_.node("vbp"), nodes_.vdd, pbody());
      gate6 = x2;
    }

    // Gain device (PMOS common source), optionally cascoded.
    if (d_.stage2_cascode_gm) {
      const ckt::NodeId n6 = c_.node("n6");
      add_mos(need(d_, "M6"), n6, gate6, nodes_.vdd, pbody());
      add_mos(need(d_, "M6C"), nodes_.out, c_.node("vbcp"), n6, pbody());
    } else {
      add_mos(need(d_, "M6"), nodes_.out, gate6, nodes_.vdd, pbody());
    }

    // Output sink, optionally cascoded ("output load mirror").
    if (d_.stage2_cascode_load) {
      const ckt::NodeId n7 = c_.node("n7");
      add_mos(need(d_, "M7"), n7, vbn, nodes_.vss, nbody());
      add_mos(need(d_, "M7C"), nodes_.out, c_.node("vbn2"), n7, nbody());
    } else {
      add_mos(need(d_, "M7"), nodes_.out, vbn, nodes_.vss, nbody());
    }

    // Miller compensation from the stage-1 high-impedance node to the
    // output.  With a level shifter present the capacitor still returns to
    // x1, not the follower output: pole splitting needs the Miller charge
    // delivered into the high-impedance node (the follower would otherwise
    // absorb it at 1/gm and leave two low-frequency poles in the loop).
    if (d_.cc > 0.0) {
      c_.add_capacitor("CC", x1, nodes_.out, d_.cc);
    }
  }

  void build_folded_cascode() {
    const ckt::NodeId tail = c_.node("tail");
    const ckt::NodeId vbn = c_.node("vbn");
    const ckt::NodeId vbp = c_.node("vbp");
    const ckt::NodeId vbcp = c_.node("vbcp");
    const ckt::NodeId fa = c_.node("fa");
    const ckt::NodeId fb = c_.node("fb");

    add_mos(need(d_, "M5"), tail, vbn, nodes_.vss, nbody());
    // Raising M1's gate raises i1, starving the mirror's sink branch so
    // the output rises: M1 carries the non-inverting input.
    add_mos(need(d_, "M1"), fa, nodes_.inp, tail, nbody());
    add_mos(need(d_, "M2"), fb, nodes_.inn, tail, nbody());
    // Fold current sources from VDD.
    add_mos(need(d_, "MF3"), fa, vbp, nodes_.vdd, pbody());
    add_mos(need(d_, "MF4"), fb, vbp, nodes_.vdd, pbody());
    // Common-gate fold cascodes into the mirror.
    const ckt::NodeId ma = c_.node("ma");
    add_mos(need(d_, "MFC1"), ma, vbcp, fa, pbody());
    add_mos(need(d_, "MFC2"), nodes_.out, vbcp, fb, pbody());
    // Self-biased NMOS cascode mirror: diode stack on the input branch.
    const ckt::NodeId a1 = c_.node("a1");
    const ckt::NodeId c1 = c_.node("c1");
    add_mos(need(d_, "MLF_in"), a1, a1, nodes_.vss, nbody());
    add_mos(need(d_, "MLF_inc"), ma, ma, a1, nbody());
    add_mos(need(d_, "MLF_out"), c1, a1, nodes_.vss, nbody());
    add_mos(need(d_, "MLF_outc"), nodes_.out, ma, c1, nbody());
  }

  const OpAmpDesign& d_;
  const tech::Technology& t_;
  ckt::Circuit& c_;
  BuiltOpAmp nodes_;
};

}  // namespace

BuiltOpAmp build_opamp(const OpAmpDesign& design, const tech::Technology& t,
                       ckt::Circuit& c, int inn_node) {
  Builder builder(design, t, c);
  return builder.build(inn_node);
}

ckt::Circuit build_standalone_opamp(const OpAmpDesign& design,
                                    const tech::Technology& t) {
  ckt::Circuit c;
  const BuiltOpAmp nodes = build_opamp(design, t, c);
  c.add_vsource("VDD", nodes.vdd, ckt::kGround, ckt::Waveform::dc(t.vdd));
  c.add_vsource("VSS", nodes.vss, ckt::kGround, ckt::Waveform::dc(t.vss));
  const double vcm =
      0.5 * (design.spec.icmr_lo + design.spec.icmr_hi);
  c.add_vsource("VIP", nodes.inp, ckt::kGround,
                ckt::Waveform::ac(vcm, 0.5, 0.0));
  c.add_vsource("VIN", nodes.inn, ckt::kGround,
                ckt::Waveform::ac(vcm, 0.5, 180.0));
  if (design.spec.cload > 0.0) {
    c.add_capacitor("CL", nodes.out, ckt::kGround, design.spec.cload);
  }
  return c;
}

}  // namespace oasys::synth
