// Canonical JSON rendering of a synthesis result (oasys.result.v1).
//
// One deterministic byte string per result: doubles render with %.17g
// (shortest round-trip precision, locale-free), fields emit in a fixed
// order, and nothing timing- or host-dependent is included.  Two results
// are bit-for-bit equal exactly when their renderings are byte-equal, which
// is what the golden regression suite (tests/golden/), the shard
// conformance tests, and the bench equivalence self-checks compare.
//
// The rendering covers the paper's deliverable — the sized transistor-level
// schematic: selection, per-style structure, every sized device, passives,
// bias currents, and predicted performance.  The plan-execution narrative
// (DiagnosticLog, ExecutionTrace) is deliberately excluded: it is
// deterministic too, but it is prose, and goldens should pin the numbers a
// wording tweak does not change.
#pragma once

#include <string>

#include "synth/oasys.h"

namespace oasys::synth {

// Canonical JSON document for one result (no trailing newline).
std::string result_json(const SynthesisResult& result);

// One-line machine-stable failure description for summary tables: empty
// for a successful selection, otherwise "no feasible style (<style>:
// <first-error-code>; ...)" built from each candidate's diagnostics.
std::string failure_brief(const SynthesisResult& result);

}  // namespace oasys::synth
