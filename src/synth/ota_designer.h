// One-stage operational-transconductance-amplifier (OTA) designer.
//
// Topology template: NMOS differential pair with a PMOS current-mirror
// load and an NMOS tail current source, output taken single-ended at the
// mirror side (the classic five-transistor OTA).  The cascode variant
// (telescopic input cascodes + cascoded load mirror) is reached by a patch
// rule when gain or the mirror-pole phase budget cannot be met — at the
// documented cost of output swing and an inherent systematic offset, the
// two properties the paper uses to knock the one-stage style out of its
// test cases B and C.
#pragma once

#include "core/spec.h"
#include "synth/opamp_design.h"
#include "tech/technology.h"

namespace oasys::synth {

OpAmpDesign design_one_stage_ota(const tech::Technology& t,
                                 const core::OpAmpSpec& spec,
                                 const SynthOptions& opts = {});

}  // namespace oasys::synth
