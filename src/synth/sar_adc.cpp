#include "synth/sar_adc.h"

#include <algorithm>
#include <cmath>

#include "spice/dc.h"
#include "synth/designer_common.h"
#include "synth/netlist_builder.h"
#include "util/text.h"

namespace oasys::synth {

using util::format;

util::DiagnosticLog SarAdcSpec::validate() const {
  util::DiagnosticLog log;
  if (bits < 2 || bits > 16) {
    log.error("spec-invalid", "bits must be in [2, 16]");
  }
  if (!(sample_rate > 0.0)) {
    log.error("spec-invalid", "sample_rate must be positive");
  }
  if (!(vin_hi > vin_lo)) {
    log.error("spec-invalid", "vin_hi must exceed vin_lo");
  }
  return log;
}

std::string SarAdcSpec::to_string() const {
  std::ostringstream os;
  os << "SAR ADC spec " << (name.empty() ? "(unnamed)" : name) << ":\n";
  os << format("  bits         = %d\n", bits);
  os << format("  sample rate  = %.3g kS/s\n", util::in_khz(sample_rate));
  os << format("  input range  = [%.2f, %.2f] V\n", vin_lo, vin_hi);
  if (power_max > 0.0) {
    os << format("  power       <= %.3g mW\n", util::in_mw(power_max));
  }
  return os.str();
}

namespace {

struct AdcContext : core::DesignContext {
  AdcContext(const tech::Technology& t, const SarAdcSpec& s,
             const SynthOptions& o)
      : core::DesignContext(t), spec(s), opts(o) {
    out.spec = s;
  }
  SarAdcSpec spec;
  SynthOptions opts;
  SarAdcDesign out;
};

core::Plan<AdcContext> build_adc_plan() {
  core::Plan<AdcContext> plan("sar-adc");

  plan.add_step("timing-budget", [](AdcContext& ctx) {
    const double t_conv = 1.0 / ctx.spec.sample_rate;
    // Acquisition window plus one decision window per bit; the comparator
    // share of each bit window starts at half (the DAC settles in the
    // rest) and can be re-partitioned by a patch rule.
    const double comp_share = ctx.get_or("comparator_share", 0.5);
    ctx.set("t_conv", t_conv);
    ctx.set("t_sample", 0.15 * t_conv);
    const double t_bit = 0.85 * t_conv / ctx.spec.bits;
    ctx.set("t_bit", t_bit);
    ctx.set("t_comp", comp_share * t_bit);
    ctx.set("t_settle", (1.0 - comp_share) * t_bit);
    ctx.set("lsb", (ctx.spec.vin_hi - ctx.spec.vin_lo) /
                       std::pow(2.0, ctx.spec.bits));
    return core::StepStatus::success();
  });

  plan.add_step("design-comparator", [](AdcContext& ctx) {
    ComparatorSpec cs;
    cs.name = ctx.spec.name + "-comparator";
    cs.resolution = 0.5 * ctx.get("lsb");
    cs.tprop_max = ctx.get("t_comp");
    cs.cload = util::pf(1.0);  // latch + wiring estimate
    // Charge-redistribution SAR: the comparison node sits at a fixed
    // common mode and only the conversion residual moves it, so the
    // comparator needs a narrow ICMR around mid-supply and a modest
    // latch-driving swing — not the converter's full input range.
    const double vcm = ctx.technology().mid_supply();
    cs.out_high = vcm + 1.0;
    cs.out_low = vcm - 0.5;
    cs.icmr_lo = vcm - 0.25;
    cs.icmr_hi = vcm + 0.25;
    cs.power_max =
        ctx.spec.power_max > 0.0 ? 0.7 * ctx.spec.power_max : 0.0;
    ctx.out.comparator = design_comparator(ctx.technology(), cs, ctx.opts);
    if (!ctx.out.comparator.feasible) {
      return core::StepStatus::fail(
          "comparator-infeasible",
          format("resolution %.2f mV in %.3g us: %s",
                 util::in_mv(cs.resolution), cs.tprop_max / util::kMicro,
                 ctx.out.comparator.amp.trace.abort_reason.c_str()));
    }
    return core::StepStatus::success();
  });

  plan.add_step("size-cap-dac", [](AdcContext& ctx) {
    const auto& t = ctx.technology();
    const double lsb = ctx.get("lsb");
    // kT/C noise of the full array sampled onto the comparison node must
    // stay below LSB/4; the unit capacitor also has a matching floor.
    const double ctot_noise =
        16.0 * util::kBoltzmann * util::kRoomTempK / (lsb * lsb);
    const double kMatchingUnitFloor = 50e-15;  // era-typical poly-poly unit
    const double n_units = std::pow(2.0, ctx.spec.bits);
    double unit = std::max(ctot_noise / n_units, kMatchingUnitFloor);
    const double ctot = unit * n_units;
    ctx.out.unit_cap = unit;
    ctx.out.total_cap = ctot;
    // Area sanity: a poly capacitor array beyond ~1 mm^2 is not a credible
    // single-cell block in this technology.
    if (t.capacitor_area(ctot) > 1e-6) {
      return core::StepStatus::fail(
          "dac-area",
          format("capacitor array needs %.2f mm^2",
                 t.capacitor_area(ctot) * 1e6));
    }
    return core::StepStatus::success();
  });

  plan.add_step("size-sample-switch", [](AdcContext& ctx) {
    // The DAC/S&H node must settle to LSB/4 within the settling share of
    // the bit window: Ron*Ctot * ln(2^bits * 4) <= t_settle.
    const double n_tau =
        std::log(std::pow(2.0, ctx.spec.bits) * 4.0);
    const double ron =
        ctx.get("t_settle") / (n_tau * ctx.out.total_cap);
    ctx.out.switch_ron_max = ron;
    if (ron < 100.0) {
      return core::StepStatus::fail(
          "switch-impossible",
          format("settling requires Ron < %.0f ohm: not realizable as a "
                 "transmission gate",
                 ron));
    }
    return core::StepStatus::success();
  });

  plan.add_step("power-area", [](AdcContext& ctx) {
    const auto& t = ctx.technology();
    // DAC switching energy ~ Ctot * Vref^2 per conversion.
    const double vref = ctx.spec.vin_hi - ctx.spec.vin_lo;
    const double p_dac =
        ctx.out.total_cap * vref * vref * ctx.spec.sample_rate;
    const double power = ctx.out.comparator.power + p_dac;
    ctx.out.power = power;
    if (ctx.spec.power_max > 0.0 && power > ctx.spec.power_max) {
      return core::StepStatus::fail(
          "power-over", format("power %.2f mW exceeds budget %.2f mW",
                               util::in_mw(power),
                               util::in_mw(ctx.spec.power_max)));
    }
    ctx.out.area = ctx.out.comparator.area +
                   t.capacitor_area(ctx.out.total_cap);
    return core::StepStatus::success();
  });

  plan.add_step("finalize", [](AdcContext& ctx) {
    ctx.out.t_conv = ctx.get("t_conv");
    ctx.out.t_sample = ctx.get("t_sample");
    ctx.out.t_bit = ctx.get("t_bit");
    ctx.out.lsb = ctx.get("lsb");
    ctx.out.feasible = true;
    return core::StepStatus::success();
  });

  // ---- rules ---------------------------------------------------------------
  const std::size_t idx_timing = plan.step_index("timing-budget");

  // The comparator can't decide in its share of the bit window: steal time
  // from the DAC-settling share once (the switch sizing step will then
  // verify the tighter settling is still realizable).
  plan.add_rule(
      "repartition-bit-window",
      [idx_timing](AdcContext& ctx, const core::StepFailure& f)
          -> std::optional<core::PatchAction> {
        if (f.code != "comparator-infeasible") return std::nullopt;
        if (ctx.bump("repartition") > 1) return std::nullopt;
        ctx.set("comparator_share", 0.7);
        return core::PatchAction::restart_at(
            idx_timing,
            "gave the comparator 70% of the bit window (DAC settles in "
            "the rest)");
      });

  return plan;
}

}  // namespace

SarAdcDesign design_sar_adc(const tech::Technology& t,
                            const SarAdcSpec& spec,
                            const SynthOptions& opts) {
  AdcContext ctx(t, spec, opts);
  const util::DiagnosticLog spec_log = spec.validate();
  if (spec_log.has_errors()) {
    ctx.out.log.append(spec_log);
    return std::move(ctx.out);
  }
  static const core::Plan<AdcContext> plan = build_adc_plan();
  core::ExecutorOptions exec;
  exec.rules_enabled = opts.rules_enabled;
  exec.max_patches = opts.max_patches;
  ctx.out.trace = core::execute_plan(plan, ctx, exec);
  ctx.out.feasible = ctx.out.trace.success && ctx.out.feasible;
  ctx.out.log.append(ctx.log());
  if (!ctx.out.trace.success) {
    ctx.out.log.error("adc-infeasible", ctx.out.trace.abort_reason);
  }
  return std::move(ctx.out);
}

MeasuredSarAdc measure_sar_adc(const SarAdcDesign& design,
                               const tech::Technology& t,
                               int ramp_points) {
  MeasuredSarAdc m;
  if (!design.feasible) {
    m.error = "design is infeasible";
    return m;
  }

  // 1. Timing: one transient decision through the real comparator.
  const MeasuredComparator cm =
      measure_comparator(design.comparator, t);
  if (!cm.ok) {
    m.error = "comparator timing check failed: " + cm.error;
    return m;
  }
  m.comparator_tprop = std::max(cm.delay_rising, cm.delay_falling);
  m.timing_met = m.comparator_tprop <= design.t_bit;

  // 2. Static transfer: behavioural SAR loop, one simulated comparator
  //    decision (DC operating point) per bit.  The DAC and S/H are ideal
  //    here — their sizing is checked analytically above; what this loop
  //    verifies is that the *synthesized comparator's* gain and offset
  //    support the LSB.
  ckt::Circuit c;
  const BuiltOpAmp nodes = build_opamp(design.comparator.amp, t, c);
  c.add_vsource("VDD", nodes.vdd, ckt::kGround, ckt::Waveform::dc(t.vdd));
  c.add_vsource("VSS", nodes.vss, ckt::kGround, ckt::Waveform::dc(t.vss));
  c.add_capacitor("CL", nodes.out, ckt::kGround,
                  design.comparator.spec.cload);
  c.add_vsource("VIN", nodes.inp, ckt::kGround, ckt::Waveform::dc(0.0));
  c.add_vsource("VDAC", nodes.inn, ckt::kGround, ckt::Waveform::dc(0.0));
  const sim::MnaLayout layout(c);
  const std::size_t vin_idx = *c.find_vsource("VIN");
  const std::size_t vdac_idx = *c.find_vsource("VDAC");
  const double mid = t.mid_supply();

  std::vector<double> warm;
  auto compare = [&](double vin, double vdac) -> std::optional<bool> {
    c.vsource(vin_idx).wave = ckt::Waveform::dc(vin);
    c.vsource(vdac_idx).wave = ckt::Waveform::dc(vdac);
    sim::OpOptions o;
    o.initial_guess = warm;
    const sim::OpResult op = sim::dc_operating_point(c, t, o);
    if (!op.converged) return std::nullopt;
    warm = op.solution;
    return op.voltage(layout, nodes.out) > mid;
  };

  const int n_codes = 1 << design.spec.bits;
  const double range = design.spec.vin_hi - design.spec.vin_lo;
  // Charge redistribution: the comparison node carries vcm plus the
  // conversion residual (vin - vdac); the reference input sits at vcm.
  const double vcm =
      0.5 * (design.comparator.spec.icmr_lo + design.comparator.spec.icmr_hi);
  int prev_code = -1;
  for (int p = 0; p < ramp_points; ++p) {
    // Stay inside the range, away from the exact end codes.
    const double frac = (p + 0.5) / ramp_points;
    const double vin = design.spec.vin_lo + frac * range;

    int code = 0;
    for (int bit = design.spec.bits - 1; bit >= 0; --bit) {
      const int trial = code | (1 << bit);
      const double vdac =
          design.spec.vin_lo + range * trial / n_codes;
      const auto decision = compare(vcm + (vin - vdac), vcm);
      if (!decision) {
        m.error = "comparator decision did not converge";
        return m;
      }
      if (*decision) code = trial;
    }
    const int ideal = std::clamp(
        static_cast<int>(std::floor(frac * n_codes)), 0, n_codes - 1);
    m.max_code_error_lsb =
        std::max(m.max_code_error_lsb, std::abs(code - ideal));
    if (code < prev_code) m.monotonic = false;
    prev_code = code;
    ++m.points_tested;
  }
  m.ok = true;
  return m;
}

}  // namespace oasys::synth
