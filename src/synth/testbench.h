// Op-amp verification testbench: closes a synthesized design through the
// circuit simulator and measures the same performance axes the spec
// constrains.  This replaces the paper's external SPICE runs (Table 2
// right-hand columns, Figure 6).
//
// Measurements performed:
//  * systematic input offset — bisection on the differential input until
//    the output sits at mid-supply (open loop, DC);
//  * open-loop AC response at the offset-nulled bias — DC gain, unity-gain
//    frequency (GBW), phase margin, -3 dB bandwidth, full Bode series;
//  * CMRR and PSRR — common-mode and supply-injection AC runs;
//  * output swing — DC solutions at large differential overdrive;
//  * slew rate — unity-gain follower driven with a voltage step;
//  * ICMR — unity-gain follower DC sweep, tracking-error window;
//  * quiescent power and per-device saturation check at the operating
//    point.
#pragma once

#include <string>
#include <vector>

#include "core/spec.h"
#include "spice/measure.h"
#include "spice/noise.h"
#include "synth/netlist_builder.h"
#include "synth/opamp_design.h"
#include "tech/builtin.h"

namespace oasys::synth {

struct MeasureOptions {
  double ac_fmin = 1.0;        // Hz
  double ac_fmax = 1e9;        // Hz
  std::size_t ac_points = 121;
  double swing_overdrive = 0.5;    // differential drive for swing [V]
  double icmr_track_tol = 0.1;     // follower tracking error window [V]
  std::size_t icmr_points = 41;
  double step_amplitude = 1.0;     // follower step for slew [V]
  bool measure_slew = true;        // transient run is the slow part
  bool measure_icmr = true;
  bool measure_noise = true;
  std::size_t noise_points = 25;
  // Threads for the AC frequency fan-out (0 = exec::default_jobs(),
  // 1 = serial).  Measured numbers are identical at every setting.
  std::size_t jobs = 0;
};

struct MeasuredOpAmp {
  bool ok = false;
  std::string error;

  core::OpAmpPerformance perf;     // measured values
  sim::BodeSeries bode;            // open-loop differential response
  sim::NoiseResult noise;          // output-referred noise spectrum
  // Input-referred noise density series (output PSD over |H|^2) [V/rtHz].
  std::vector<double> input_noise_density;
  double offset_applied = 0.0;     // differential bias used for AC [V]
  // Devices not in saturation at the nulled operating point (mirrors and
  // diodes are expected to saturate; anything here deserves a look).
  std::vector<std::string> non_saturated;
};

MeasuredOpAmp measure_opamp(const OpAmpDesign& design,
                            const tech::Technology& t,
                            const MeasureOptions& opts = {});

// Corner enumeration: re-measures one sized design with the device
// parameters derated to each corner.  Corners are independent full
// measurement runs, so they distribute over up to `jobs` threads
// (0 = exec::default_jobs()); out[i] is exactly what a serial
// measure_opamp at corners[i] returns.
std::vector<MeasuredOpAmp> measure_across_corners(
    const OpAmpDesign& design, const tech::Technology& nominal,
    const std::vector<tech::Corner>& corners, const MeasureOptions& opts = {},
    std::size_t jobs = 0);

}  // namespace oasys::synth
