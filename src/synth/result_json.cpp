#include "synth/result_json.h"

#include <sstream>

#include "util/text.h"

namespace oasys::synth {

namespace {

using util::format;

// Shortest round-trip decimal; bit-identical doubles render identical text.
std::string num(double v) { return format("%.17g", v); }

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += format("\\u%04x", static_cast<unsigned>(c));
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

void append_spec(std::ostringstream* os, const core::OpAmpSpec& s) {
  *os << "{\"name\": " << quote(s.name)
      << ", \"gain_min_db\": " << num(s.gain_min_db)
      << ", \"gbw_min\": " << num(s.gbw_min)
      << ", \"pm_min_deg\": " << num(s.pm_min_deg)
      << ", \"slew_min\": " << num(s.slew_min)
      << ", \"cload\": " << num(s.cload)
      << ", \"swing_pos\": " << num(s.swing_pos)
      << ", \"swing_neg\": " << num(s.swing_neg)
      << ", \"offset_max\": " << num(s.offset_max)
      << ", \"icmr_lo\": " << num(s.icmr_lo)
      << ", \"icmr_hi\": " << num(s.icmr_hi)
      << ", \"power_max\": " << num(s.power_max)
      << ", \"area_max\": " << num(s.area_max)
      << ", \"cmrr_min_db\": " << num(s.cmrr_min_db)
      << ", \"psrr_min_db\": " << num(s.psrr_min_db)
      << ", \"noise_max\": " << num(s.noise_max) << "}";
}

void append_performance(std::ostringstream* os,
                        const core::OpAmpPerformance& p) {
  *os << "{\"gain_db\": " << num(p.gain_db) << ", \"gbw\": " << num(p.gbw)
      << ", \"pm_deg\": " << num(p.pm_deg) << ", \"slew\": " << num(p.slew)
      << ", \"swing_pos\": " << num(p.swing_pos)
      << ", \"swing_neg\": " << num(p.swing_neg)
      << ", \"offset\": " << num(p.offset)
      << ", \"icmr_lo\": " << num(p.icmr_lo)
      << ", \"icmr_hi\": " << num(p.icmr_hi)
      << ", \"power\": " << num(p.power) << ", \"area\": " << num(p.area)
      << ", \"cmrr_db\": " << num(p.cmrr_db)
      << ", \"psrr_db\": " << num(p.psrr_db)
      << ", \"noise_in\": " << num(p.noise_in) << "}";
}

void append_optional(std::ostringstream* os, const std::optional<double>& v) {
  if (v) {
    *os << num(*v);
  } else {
    *os << "null";
  }
}

void append_design(std::ostringstream* os, const OpAmpDesign& d) {
  *os << "{\"style\": " << quote(to_string(d.style))
      << ", \"feasible\": " << (d.feasible ? "true" : "false")
      << ", \"soft_violations\": " << d.soft_violations
      << ",\n   \"structure\": {\"stage1_cascode\": "
      << (d.stage1_cascode ? "true" : "false")
      << ", \"stage2_cascode_load\": "
      << (d.stage2_cascode_load ? "true" : "false")
      << ", \"stage2_cascode_gm\": "
      << (d.stage2_cascode_gm ? "true" : "false")
      << ", \"tail_cascode\": " << (d.tail_cascode ? "true" : "false")
      << ", \"has_level_shifter\": "
      << (d.has_level_shifter ? "true" : "false") << "}"
      << ",\n   \"bias\": {\"style\": " << quote(blocks::to_string(d.bias_style))
      << ", \"ideal_reference\": "
      << (d.ideal_bias_reference ? "true" : "false")
      << ", \"iref\": " << num(d.iref) << ", \"itail\": " << num(d.itail)
      << ", \"i2\": " << num(d.i2) << ", \"ils\": " << num(d.ils)
      << ", \"rref\": " << num(d.rref) << ", \"vb_cascode_n\": ";
  append_optional(os, d.vb_cascode_n);
  *os << ", \"vb_cascode_p\": ";
  append_optional(os, d.vb_cascode_p);
  *os << "}, \"cc\": " << num(d.cc) << ",\n   \"devices\": [";
  for (std::size_t i = 0; i < d.devices.size(); ++i) {
    const blocks::SizedDevice& dev = d.devices[i];
    if (i > 0) *os << ",\n               ";
    *os << "{\"role\": " << quote(dev.role)
        << ", \"type\": " << quote(mos::to_string(dev.type))
        << ", \"w\": " << num(dev.w) << ", \"l\": " << num(dev.l)
        << ", \"m\": " << dev.m << ", \"id\": " << num(dev.id)
        << ", \"vov\": " << num(dev.vov) << "}";
  }
  *os << "],\n   \"predicted\": ";
  append_performance(os, d.predicted);
  *os << "}";
}

}  // namespace

std::string result_json(const SynthesisResult& result) {
  std::ostringstream os;
  os << "{\"schema\": \"oasys.result.v1\",\n \"spec\": ";
  append_spec(&os, result.spec);
  os << ",\n \"selection\": {\"best_index\": ";
  if (result.selection.best) {
    os << *result.selection.best << ", \"best_style\": "
       << quote(to_string(result.candidates[*result.selection.best].style));
  } else {
    os << "null, \"best_style\": null";
  }
  os << ", \"ranking\": [";
  for (std::size_t i = 0; i < result.selection.ranking.size(); ++i) {
    if (i > 0) os << ", ";
    os << result.selection.ranking[i];
  }
  os << "]},\n \"candidates\": [\n  ";
  for (std::size_t i = 0; i < result.candidates.size(); ++i) {
    if (i > 0) os << ",\n  ";
    append_design(&os, result.candidates[i]);
  }
  os << "\n ]}";
  return os.str();
}

std::string failure_brief(const SynthesisResult& result) {
  if (result.success()) return "";
  std::string brief = "no feasible style (";
  for (std::size_t i = 0; i < result.candidates.size(); ++i) {
    const OpAmpDesign& c = result.candidates[i];
    if (i > 0) brief += "; ";
    brief += to_string(c.style);
    brief += ": ";
    const util::Diagnostic* err = c.log.first_error();
    brief += err != nullptr ? err->code : "infeasible";
  }
  brief += ")";
  return brief;
}

}  // namespace oasys::synth
