// The paper's three evaluation specs (Table 2 inputs), reconstructed.
//
// The scanned table values are unreadable, so the sets below are rebuilt
// from Section 4.3's prose, which pins what matters:
//  * A — "an ordinary op amp that makes no unusual demands": a one-stage
//    design meets everything and wins on area over the two-stage.
//  * B — "more gain, a lower offset voltage and a larger output voltage
//    swing than A": straightforward for a two-stage, "essentially
//    impossible" for the one-stage style (gain pushes it to cascodes,
//    which kill swing, and its mirror load leaves an inherent systematic
//    offset).
//  * C — "the most aggressive": 100 dB of gain with a +/-2.5 V swing
//    (quoted numbers), driving the two-stage style to cascoded mirrors
//    plus a level shifter; the PM spec (45 deg) is under-achieved but
//    shipped as a first cut.
//
// Supplies are the 5 um process's +/-5 V rails.
#pragma once

#include "core/spec.h"

namespace oasys::synth {

core::OpAmpSpec spec_case_a();
core::OpAmpSpec spec_case_b();
core::OpAmpSpec spec_case_c();

// All three, in order.
std::vector<core::OpAmpSpec> paper_test_cases();

}  // namespace oasys::synth
