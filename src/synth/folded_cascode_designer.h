// Folded-cascode op-amp designer — the paper's named future-work topology.
//
// Topology template: NMOS differential pair whose drain currents are
// "folded" through common-gate PMOS cascodes into a self-biased NMOS
// cascode current mirror; output taken single-ended at the cascode
// junction.  One stage, load-compensated (no Miller capacitor), so it
// pairs telescopic-class gain with better output swing and a near-rail
// input common-mode top — the niche the style exists for.
//
// Device roles: "M1"/"M2" (pair), "MF3"/"MF4" (fold current sources, bias
// taps), "MFC1"/"MFC2" (fold cascodes), "MLF_*" (cascode mirror load),
// "M5" (tail tap), plus the bias chain.  The fold-cascode gate bias is an
// ideal source (vb_cascode_p), like the telescopic input-cascode bias.
#pragma once

#include "core/spec.h"
#include "synth/opamp_design.h"
#include "tech/technology.h"

namespace oasys::synth {

OpAmpDesign design_folded_cascode(const tech::Technology& t,
                                  const core::OpAmpSpec& spec,
                                  const SynthOptions& opts = {});

}  // namespace oasys::synth
