// The output of OASYS: a sized, transistor-level op-amp design.
//
// A design records the selected style, the structural decisions the plan's
// patch rules made (cascoding, level-shifter insertion, ...), every sized
// device, the passives, the first-order predicted performance, and the full
// plan-execution trace — the paper's "sized transistor-level circuit
// schematic" plus the narrative of how it was reached.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "blocks/bias_chain.h"
#include "blocks/block_common.h"
#include "core/plan.h"
#include "core/spec.h"
#include "spice/sim_options.h"
#include "util/diagnostics.h"

namespace oasys::synth {

enum class OpAmpStyle {
  kOneStageOta,
  kTwoStage,
  // The folded-cascode style is the paper's named future-work extension
  // ("expand the breadth of circuit knowledge in OASYS to include more op
  // amp topologies (e.g., folded cascode ...)").
  kFoldedCascode,
};

const char* to_string(OpAmpStyle s);

struct OpAmpDesign {
  core::OpAmpSpec spec;
  OpAmpStyle style = OpAmpStyle::kOneStageOta;
  bool feasible = false;
  // Spec axes the plan knowingly missed but shipped anyway (the paper's
  // "acceptable for a first-cut design", e.g. case C's phase margin).
  int soft_violations = 0;

  // Structural decisions (made by patch rules during planning):
  bool stage1_cascode = false;      // telescopic input + cascoded load mirror
  bool stage2_cascode_load = false; // cascoded output sink (two-stage)
  bool stage2_cascode_gm = false;   // cascoded gain device (two-stage)
  bool tail_cascode = false;        // cascoded tail current source
  bool has_level_shifter = false;   // follower between the stages

  std::vector<blocks::SizedDevice> devices;
  double cc = 0.0;    // compensation capacitor [F] (two-stage only)
  double rref = 0.0;  // bias reference resistor [ohm]; 0 when ideal ref
  bool ideal_bias_reference = false;
  blocks::BiasStyle bias_style = blocks::BiasStyle::kResistorReference;

  // Bias bookkeeping:
  double iref = 0.0;   // reference branch current [A]
  double itail = 0.0;  // first-stage tail current [A]
  double i2 = 0.0;     // second-stage current [A] (two-stage)
  double ils = 0.0;    // level-shifter current [A]
  // Ideal gate-bias voltages for cascodes that cannot be self-biased:
  // telescopic input cascodes (vb_cascode_n) and a cascoded stage-2 gain
  // device (vb_cascode_p), in absolute volts.  These are the only places
  // the era-faithful netlist uses ideal sources; see DESIGN.md.
  std::optional<double> vb_cascode_n;
  std::optional<double> vb_cascode_p;

  core::OpAmpPerformance predicted;
  util::DiagnosticLog log;
  core::ExecutionTrace trace;

  // Looks up a sized device by role; nullptr when absent.
  const blocks::SizedDevice* device(const std::string& role) const;
  std::string style_name() const;
};

// Options shared by the style designers and the top-level synthesizer.
struct SynthOptions {
  bool rules_enabled = true;     // ablation hook: disable plan patching
  int max_patches = 24;
  blocks::BiasStyle bias_style = blocks::BiasStyle::kResistorReference;
  double iref = 25e-6;           // nominal bias reference current [A]
  // Accept a completed design whose predicted phase margin is within this
  // many degrees below spec as a first-cut (paper case C behaviour).
  double pm_grace_deg = 15.0;
  // Parallelism for the style designers (0 = exec::default_jobs(), 1 =
  // strictly serial).  Results are identical at every setting; see
  // exec/executor.h for the determinism guarantee.
  std::size_t jobs = 0;
  // Transient-engine selection for any simulation this request triggers
  // (verification testbenches, comparator/SAR measurement).  Serving
  // layers must stamp fully *resolved* values here — never kDefault / 0 —
  // before fingerprinting or serialization, so the coordinator and a
  // worker with different environments derive identical canonical hashes
  // from the same wire bytes (see shard/worker.cpp's drift guard).
  sim::TranMode tran_mode = sim::TranMode::kDefault;
  double tran_rtol = 0.0;  // <= 0: engine default (spice/sim_options.h)
  double tran_atol = 0.0;
};

// Canonical fingerprint of the options for cache keys (see
// util/fingerprint.h).  `jobs` is deliberately excluded: the executor
// guarantees results are identical at every jobs setting, so two requests
// differing only in jobs must share one cache entry.  The transient mode
// and tolerances are deliberately *included*: adaptive results are only
// tolerance-equal to fixed-step, so the two must never share a cache
// entry, a shard route, or a golden pin.
std::string canonical_string(const SynthOptions& opts);
std::uint64_t hash(const SynthOptions& opts);

}  // namespace oasys::synth
