#include "synth/test_cases.h"

#include "util/units.h"

namespace oasys::synth {

using namespace util;  // unit helpers

core::OpAmpSpec spec_case_a() {
  core::OpAmpSpec s;
  s.name = "A";
  s.gain_min_db = 45.0;
  s.gbw_min = mhz(1.0);
  s.pm_min_deg = 45.0;
  s.slew_min = v_per_us(1.0);
  s.cload = pf(10.0);
  s.swing_pos = 1.0;
  s.swing_neg = 1.0;
  s.offset_max = mv(20.0);
  s.icmr_lo = -2.0;
  s.icmr_hi = 2.0;
  s.power_max = mw(5.0);
  return s;
}

core::OpAmpSpec spec_case_b() {
  core::OpAmpSpec s;
  s.name = "B";
  s.gain_min_db = 70.0;
  s.gbw_min = mhz(2.0);
  s.pm_min_deg = 45.0;
  s.slew_min = v_per_us(2.0);
  s.cload = pf(10.0);
  s.swing_pos = 3.5;
  s.swing_neg = 3.5;
  s.offset_max = mv(2.0);
  s.icmr_lo = -2.0;
  s.icmr_hi = 2.0;
  s.power_max = mw(10.0);
  return s;
}

core::OpAmpSpec spec_case_c() {
  core::OpAmpSpec s;
  s.name = "C";
  s.gain_min_db = 100.0;
  s.gbw_min = mhz(5.0);
  s.pm_min_deg = 45.0;
  s.slew_min = v_per_us(5.0);
  s.cload = pf(5.0);
  s.swing_pos = 2.5;
  s.swing_neg = 2.5;
  s.offset_max = mv(1.0);
  s.icmr_lo = -1.5;
  s.icmr_hi = 1.5;
  s.power_max = mw(15.0);
  return s;
}

std::vector<core::OpAmpSpec> paper_test_cases() {
  return {spec_case_a(), spec_case_b(), spec_case_c()};
}

}  // namespace oasys::synth
