// Internals shared by the op-amp style designers (not part of the public
// API).  Holds the typed plan context and small prediction helpers both
// plans use.
#pragma once

#include <algorithm>
#include <cmath>

#include "blocks/bias_chain.h"
#include "blocks/current_mirror.h"
#include "blocks/diff_pair.h"
#include "blocks/gm_stage.h"
#include "blocks/level_shifter.h"
#include "core/context.h"
#include "mos/design_eqs.h"
#include "synth/opamp_design.h"
#include "util/units.h"

namespace oasys::synth::internal {

// Blackboard for an op-amp translation plan: design variables (in the base
// DesignContext map) plus typed sub-block results and the design being
// assembled.
struct OpAmpContext : core::DesignContext {
  OpAmpContext(const tech::Technology& t, const core::OpAmpSpec& s,
               const SynthOptions& o)
      : core::DesignContext(t), spec(s), opts(o) {
    out.spec = s;
    out.bias_style = o.bias_style;
  }

  core::OpAmpSpec spec;
  SynthOptions opts;
  OpAmpDesign out;

  // Sub-block design results (overwritten when a rule restarts the plan).
  blocks::DiffPairDesign pair;
  blocks::CurrentMirrorDesign load;
  blocks::GmStageDesign gm2;
  blocks::LevelShifterDesign ls;
  blocks::BiasChainDesign bias;

  const tech::MosParams& nmosp() const { return technology().nmos; }
  const tech::MosParams& pmosp() const { return technology().pmos; }
  double vdd() const { return technology().vdd; }
  double vss() const { return technology().vss; }
  double mid() const { return technology().mid_supply(); }
  bool icmr_constrained() const {
    return spec.icmr_lo != 0.0 || spec.icmr_hi != 0.0;
  }
  double icmr_lo() const { return icmr_constrained() ? spec.icmr_lo : mid(); }
  double icmr_hi() const { return icmr_constrained() ? spec.icmr_hi : mid(); }
  double icmr_mid() const { return 0.5 * (icmr_lo() + icmr_hi()); }
};

// |VGS| of the input pair including body effect, solved by fixed-point
// iteration: the tail (pair-source) voltage depends on VGS itself.
// `vicm` is the common-mode input level the pair operates at.
inline double input_pair_vgs(const tech::Technology& t, double vov1,
                             double vicm) {
  double vgs = t.nmos.vt0 + vov1;
  for (int i = 0; i < 4; ++i) {
    const double vtail = vicm - vgs;
    const double vsb = std::max(vtail - t.vss, 0.0);
    vgs = mos::threshold(t.nmos, vsb) + vov1;
  }
  return vgs;
}

// Phase lag contributed at `freq` by a real pole at `pole_freq` [degrees].
inline double pole_phase_deg(double freq, double pole_freq) {
  if (pole_freq <= 0.0) return 0.0;
  return util::deg(std::atan(freq / pole_freq));
}

// Collects all sub-block device lists into the design, in a deterministic
// order, replacing whatever was there.
inline void collect_devices(OpAmpContext& ctx) {
  auto& d = ctx.out.devices;
  d.clear();
  auto append = [&](const std::vector<blocks::SizedDevice>& src) {
    d.insert(d.end(), src.begin(), src.end());
  };
  append(ctx.pair.devices);
  append(ctx.load.devices);
  append(ctx.gm2.devices);
  append(ctx.ls.devices);
  append(ctx.bias.devices);
}

// Soft-accept bookkeeping shared by the styles' first-cut rules.
inline void record_soft_violation(OpAmpContext& ctx, const char* axis,
                                  const std::string& detail) {
  ++ctx.out.soft_violations;
  ctx.log().warning(std::string("first-cut-") + axis, detail);
}

}  // namespace oasys::synth::internal
