// Quickstart: synthesize a CMOS op amp from a performance spec, print the
// sized schematic, and verify it with the built-in simulator.
//
//   $ ./quickstart
#include <cstdio>

#include "synth/oasys.h"
#include "synth/report.h"
#include "synth/testbench.h"
#include "tech/builtin.h"
#include "util/units.h"

int main() {
  using namespace oasys;

  // 1. Pick a fabrication process (Table 1 inputs).  Technologies can also
  //    be loaded from a file: tech::load_tech_file("tech/cmos5.tech").
  const tech::Technology t = tech::five_micron();

  // 2. State the performance specification (Table 2 inputs).
  core::OpAmpSpec spec;
  spec.name = "quickstart";
  spec.gain_min_db = 60.0;
  spec.gbw_min = util::mhz(1.0);
  spec.pm_min_deg = 45.0;
  spec.slew_min = util::v_per_us(1.0);
  spec.cload = util::pf(10.0);
  spec.swing_pos = 2.0;
  spec.swing_neg = 2.0;
  spec.icmr_lo = -2.0;
  spec.icmr_hi = 2.0;
  spec.power_max = util::mw(5.0);

  // 3. Synthesize: every style is designed breadth-first and the best
  //    feasible one is selected on estimated area.
  const synth::SynthesisResult result = synth::synthesize_opamp(t, spec);
  std::fputs(synth::synthesis_report(result).c_str(), stdout);
  if (!result.success()) return 1;

  // 4. Verify with the built-in SPICE-class simulator (the paper's
  //    verification loop).
  const synth::MeasuredOpAmp measured =
      synth::measure_opamp(*result.best(), t);
  if (!measured.ok) {
    std::fprintf(stderr, "measurement failed: %s\n", measured.error.c_str());
    return 1;
  }
  std::puts("\nspec vs predicted vs simulated:");
  std::fputs(synth::comparison_table(*result.best(), &measured).c_str(),
             stdout);
  return 0;
}
