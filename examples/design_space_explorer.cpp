// Design-space exploration: sweep the gain requirement continuously (the
// paper's headline advantage over fixed-cell libraries, Sec. 4.3) and watch
// OASYS trade area for gain and change topology along the way.
//
//   $ ./design_space_explorer [cload_pf]
#include <cstdio>
#include <cstdlib>

#include "synth/oasys.h"
#include "tech/builtin.h"
#include "util/table.h"
#include "util/text.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace oasys;
  const double cload_pf = argc > 1 ? std::atof(argv[1]) : 10.0;

  const tech::Technology t = tech::five_micron();
  core::OpAmpSpec spec;
  spec.gbw_min = util::mhz(1.0);
  spec.pm_min_deg = 45.0;
  spec.slew_min = util::v_per_us(1.0);
  spec.cload = util::pf(cload_pf);
  spec.icmr_lo = -1.0;
  spec.icmr_hi = 1.0;

  util::Table table({"gain spec (dB)", "winning style", "area (um^2)",
                     "predicted gain (dB)", "power (mW)"});
  std::string prev_style;
  for (double gain = 40.0; gain <= 110.0; gain += 5.0) {
    spec.gain_min_db = gain;
    spec.name = util::format("g%.0f", gain);
    const synth::SynthesisResult r = synth::synthesize_opamp(t, spec);
    if (!r.success()) {
      table.add_row({util::format("%.0f", gain), "(infeasible)", "-", "-",
                     "-"});
      continue;
    }
    const synth::OpAmpDesign& d = *r.best();
    std::string style = d.style_name();
    if (style != prev_style && !prev_style.empty()) {
      table.add_separator();  // topology-change point
    }
    prev_style = style;
    table.add_row({util::format("%.0f", gain), style,
                   util::format("%.0f", util::in_um2(d.predicted.area)),
                   util::format("%.1f", d.predicted.gain_db),
                   util::format("%.2f", util::in_mw(d.predicted.power))});
  }
  std::printf("OASYS design-space sweep, CL = %.0f pF "
              "(separators mark topology changes)\n\n",
              cload_pf);
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
