// Verify and export: synthesize an op amp, run the full measurement suite
// on the built-in simulator, print the Bode response, and write a
// SPICE-compatible deck for external verification (the path a user would
// take to reproduce the paper's Figure 6 with Berkeley SPICE).
//
//   $ ./verify_and_export [out.sp]
#include <cstdio>
#include <fstream>

#include "netlist/spice_writer.h"
#include "synth/oasys.h"
#include "synth/report.h"
#include "synth/test_cases.h"
#include "synth/testbench.h"
#include "tech/builtin.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace oasys;
  const tech::Technology t = tech::five_micron();

  // Use the paper's most aggressive test case (C).
  const core::OpAmpSpec spec = synth::spec_case_c();
  std::fputs(spec.to_string().c_str(), stdout);

  const synth::SynthesisResult r = synth::synthesize_opamp(t, spec);
  if (!r.success()) {
    std::puts("synthesis failed");
    return 1;
  }
  std::fputs(synth::design_summary(*r.best()).c_str(), stdout);

  const synth::MeasuredOpAmp m = synth::measure_opamp(*r.best(), t);
  if (!m.ok) {
    std::fprintf(stderr, "measurement failed: %s\n", m.error.c_str());
    return 1;
  }
  std::fputs(synth::comparison_table(*r.best(), &m).c_str(), stdout);

  std::puts("\ngain-phase response (decade points):");
  for (std::size_t i = 0; i < m.bode.freqs.size(); i += 12) {
    std::printf("  f = %9.3g Hz   gain = %7.2f dB   phase = %8.2f deg\n",
                m.bode.freqs[i], m.bode.gain_db[i], m.bode.phase_deg[i]);
  }

  if (m.noise.ok) {
    std::puts("\ninput-referred noise (1/f then white):");
    for (std::size_t i = 0; i < m.noise.freqs.size(); i += 6) {
      std::printf("  f = %9.3g Hz   %7.1f nV/rtHz\n", m.noise.freqs[i],
                  m.input_noise_density[i] * 1e9);
    }
    std::puts("  dominant noise sources at the top frequency:");
    for (const auto& contrib : m.noise.top_contributors) {
      if (contrib.psd <= 0.0) break;
      std::printf("    %-8s %-8s %.3g V^2/Hz\n", contrib.element.c_str(),
                  contrib.kind.c_str(), contrib.psd);
    }
  }

  const char* path = argc > 1 ? argv[1] : "opamp_case_c.sp";
  const ckt::Circuit deck_circuit =
      synth::build_standalone_opamp(*r.best(), t);
  ckt::SpiceWriterOptions wo;
  wo.title = "OASYS case C synthesized op amp";
  std::ofstream out(path);
  out << ckt::to_spice_deck(deck_circuit, t, wo);
  std::printf("\nSPICE deck written to %s\n", path);
  return 0;
}
