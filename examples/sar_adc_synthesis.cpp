// Level-0 synthesis demo: the successive-approximation A/D converter from
// the paper's Figure 1.  The converter-level plan translates {bits, rate,
// range} into sub-block specifications, invokes the comparator designer
// (which invokes the Level-2 block designers), sizes the capacitor DAC and
// sampling switch analytically, then verifies by running behavioural
// conversions against the circuit-simulated comparator.
//
//   $ ./sar_adc_synthesis [bits] [rate_ksps]
#include <cstdio>
#include <cstdlib>

#include "synth/report.h"
#include "synth/sar_adc.h"
#include "tech/builtin.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace oasys;
  const tech::Technology t = tech::five_micron();

  synth::SarAdcSpec spec;
  spec.name = "example";
  spec.bits = argc > 1 ? std::atoi(argv[1]) : 8;
  spec.sample_rate = util::khz(argc > 2 ? std::atof(argv[2]) : 20.0);
  spec.vin_lo = -2.0;
  spec.vin_hi = 2.0;
  std::fputs(spec.to_string().c_str(), stdout);

  const synth::SarAdcDesign d = synth::design_sar_adc(t, spec);
  if (!d.feasible) {
    std::puts("no feasible converter; plan narrative:");
    std::fputs(d.trace.to_string().c_str(), stdout);
    return 1;
  }

  std::puts("\nlevel-0 translation results:");
  std::printf("  LSB               = %.2f mV\n", util::in_mv(d.lsb));
  std::printf("  timing            = %.2f us sample + %d x %.2f us bits "
              "(%.1f us total)\n",
              d.t_sample / util::kMicro, spec.bits,
              d.t_bit / util::kMicro, d.t_conv / util::kMicro);
  std::printf("  capacitor DAC     = %d x %.0f fF units (%.1f pF total)\n",
              1 << spec.bits, util::in_ff(d.unit_cap),
              util::in_pf(d.total_cap));
  std::printf("  sampling switch   : Ron <= %.1f kohm\n",
              d.switch_ron_max / 1e3);
  std::printf("  power / area      = %.2f mW / %.0f um^2\n",
              util::in_mw(d.power), util::in_um2(d.area));

  std::puts("\nsub-block: synthesized comparator");
  std::fputs(d.comparator.spec.to_string().c_str(), stdout);
  std::fputs(synth::device_table(d.comparator.amp).c_str(), stdout);

  std::puts("\nverification: behavioural SAR conversions against the "
            "simulated comparator");
  const synth::MeasuredSarAdc m = synth::measure_sar_adc(d, t, 33);
  if (!m.ok) {
    std::printf("  measurement failed: %s\n", m.error.c_str());
    return 1;
  }
  std::printf("  %d ramp points: max code error %d LSB, %smonotonic\n",
              m.points_tested, m.max_code_error_lsb,
              m.monotonic ? "" : "NOT ");
  std::printf("  comparator decision time %.2f us vs %.2f us bit budget "
              "(%s)\n",
              m.comparator_tprop / util::kMicro, d.t_bit / util::kMicro,
              m.timing_met ? "met" : "MISSED");
  return 0;
}
