// Fully differential OTA synthesis (paper Sec. 5, "fully differential
// styles"): the design problem that makes FD circuits different is the
// common-mode feedback loop, which this example synthesizes and then
// stresses in simulation — differential gain, output common-mode accuracy,
// and CM-loop step stability.
//
//   $ ./fully_differential [gain_db]
#include <cstdio>
#include <cstdlib>

#include "synth/fd_ota.h"
#include "synth/mismatch.h"
#include "tech/builtin.h"
#include "util/table.h"
#include "util/text.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace oasys;
  const tech::Technology t = tech::five_micron();

  core::OpAmpSpec spec;
  spec.name = "fd-example";
  spec.gain_min_db = argc > 1 ? std::atof(argv[1]) : 45.0;
  spec.gbw_min = util::mhz(2.0);
  spec.slew_min = util::v_per_us(2.0);
  spec.cload = util::pf(5.0);
  spec.swing_pos = 1.0;
  spec.swing_neg = 1.0;
  spec.icmr_lo = -1.0;
  spec.icmr_hi = 1.0;
  std::fputs(spec.to_string().c_str(), stdout);

  const synth::FdOtaDesign d = synth::design_fd_ota(t, spec);
  if (!d.feasible) {
    std::puts("no feasible design; plan narrative:");
    std::fputs(d.trace.to_string().c_str(), stdout);
    return 1;
  }

  util::Table table({"device", "type", "W (um)", "L (um)", "Id (uA)"});
  for (const auto& dev : d.devices) {
    table.add_row({dev.role, mos::to_string(dev.type),
                   util::format("%.1f", util::in_um(dev.w)),
                   util::format("%.1f", util::in_um(dev.l)),
                   util::format("%.2f", util::in_ua(dev.id))});
  }
  std::puts("\nsynthesized devices (incl. CMFB network):");
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("RCM = %.0f kohm x2 (CM sense), VCMREF = %.3f V\n",
              d.rcm / 1e3, d.vcm_ref);

  const synth::MeasuredFdOta m = synth::measure_fd_ota(d, t);
  if (!m.ok) {
    std::printf("measurement failed: %s\n", m.error.c_str());
    return 1;
  }
  std::puts("\nsimulated (differential):");
  std::printf("  gain   %.1f dB (predicted %.1f)\n", m.gain_db,
              d.predicted.gain_db);
  std::printf("  GBW    %.2f MHz (predicted %.2f)\n", util::in_mhz(m.gbw),
              util::in_mhz(d.predicted.gbw));
  std::printf("  swing  +%.2f / -%.2f V per side\n", m.swing_pos,
              m.swing_neg);
  std::printf("  CMRR   %.0f dB (matched halves)\n", m.cmrr_db);
  std::printf("  output CM error %.0f mV; CM step %s\n",
              m.cm_error * 1e3,
              m.cm_loop_settles ? "settles cleanly" : "DOES NOT SETTLE");
  return 0;
}
