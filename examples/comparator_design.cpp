// Comparator synthesis: the framework's block-reuse story.  The same
// sub-block designers that build op amps are driven by a different
// translation plan — resolution and propagation delay instead of gain
// bandwidth and phase margin — and verified with a transient testbench.
//
//   $ ./comparator_design [resolution_mv] [tprop_us]
#include <cstdio>
#include <cstdlib>

#include "synth/comparator.h"
#include "synth/report.h"
#include "tech/builtin.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace oasys;
  const tech::Technology t = tech::five_micron();

  synth::ComparatorSpec cs;
  cs.name = "example";
  cs.resolution = util::mv(argc > 1 ? std::atof(argv[1]) : 10.0);
  cs.tprop_max = util::us(argc > 2 ? std::atof(argv[2]) : 2.0);
  cs.cload = util::pf(2.0);
  cs.out_high = 1.5;
  cs.out_low = -0.5;
  cs.icmr_lo = -1.0;
  cs.icmr_hi = 0.5;
  std::fputs(cs.to_string().c_str(), stdout);

  const synth::ComparatorDesign d = synth::design_comparator(t, cs);
  if (!d.feasible) {
    std::puts("no feasible comparator; plan narrative:");
    std::fputs(d.amp.trace.to_string().c_str(), stdout);
    return 1;
  }
  std::printf("\nsynthesized (%s input stage):\n",
              d.amp.stage1_cascode ? "cascoded" : "simple");
  std::fputs(synth::device_table(d.amp).c_str(), stdout);
  std::printf("predicted: gain %.1f dB, delay %.3g us, offset %.2f mV, "
              "power %.2f mW\n",
              d.gain_db, d.delay / util::kMicro, util::in_mv(d.offset),
              util::in_mw(d.power));

  const synth::MeasuredComparator m = synth::measure_comparator(d, t);
  if (!m.ok) {
    std::printf("measurement failed: %s\n", m.error.c_str());
    return 1;
  }
  std::printf("simulated: delay %.3g us rising / %.3g us falling, levels "
              "[%.2f, %.2f] V, offset %.2f mV, power %.2f mW\n",
              m.delay_rising / util::kMicro,
              m.delay_falling / util::kMicro, m.out_low, m.out_high,
              util::in_mv(m.offset), util::in_mw(m.power));
  std::puts("(the falling edge pays overdrive recovery: the previous "
            "decision saturated the first stage — a large-signal effect "
            "the first-order plan does not model)");
  return 0;
}
