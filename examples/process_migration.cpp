// Process migration: the same performance spec synthesized against two
// different fabrication processes.  OASYS reads all process knowledge from
// the technology description (paper Sec. 4.1: "To keep pace with the rapid
// evolution of process technology, OASYS simply reads process parameters
// from a technology file"), so retargeting is a one-argument change.
//
//   $ ./process_migration [path/to/custom.tech]
#include <cstdio>

#include "synth/oasys.h"
#include "synth/report.h"
#include "tech/builtin.h"
#include "tech/tech_parser.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace oasys;

  std::vector<tech::Technology> processes = {tech::five_micron(),
                                             tech::three_micron()};
  if (argc > 1) {
    const tech::ParseResult r = tech::load_tech_file(argv[1]);
    if (!r.ok()) {
      std::fprintf(stderr, "cannot load %s:\n%s", argv[1],
                   r.log.to_string().c_str());
      return 1;
    }
    processes.push_back(r.technology);
  }

  core::OpAmpSpec spec;
  spec.name = "migrate";
  spec.gain_min_db = 70.0;
  spec.gbw_min = util::mhz(2.0);
  spec.pm_min_deg = 45.0;
  spec.slew_min = util::v_per_us(2.0);
  spec.cload = util::pf(10.0);
  spec.swing_pos = 3.0;
  spec.swing_neg = 3.0;
  spec.offset_max = util::mv(2.0);
  spec.icmr_lo = -2.0;
  spec.icmr_hi = 2.0;
  std::fputs(spec.to_string().c_str(), stdout);

  for (const tech::Technology& t : processes) {
    std::printf("\n=== process %s (Lmin %.1f um) ===\n", t.name.c_str(),
                util::in_um(t.lmin));
    const synth::SynthesisResult r = synth::synthesize_opamp(t, spec);
    if (!r.success()) {
      std::puts("  no feasible design in this process");
      continue;
    }
    std::fputs(synth::design_summary(*r.best()).c_str(), stdout);
    std::fputs(synth::device_table(*r.best()).c_str(), stdout);
  }
  return 0;
}
