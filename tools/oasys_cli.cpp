// oasys — command-line driver for the synthesis framework.
//
// Mirrors the paper's tool interface: a technology file and a performance
// specification in, a sized transistor schematic and its verification out.
//
// Usage:
//   oasys --spec case_b.spec [--tech tech/cmos5.tech] [--verify]
//         [--export out.sp] [--trace] [--no-rules]
//
// With no --spec, prints the built-in paper test cases as templates.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/spec_parser.h"
#include "exec/executor.h"
#include "netlist/spice_writer.h"
#include "synth/oasys.h"
#include "synth/report.h"
#include "synth/test_cases.h"
#include "synth/testbench.h"
#include "tech/builtin.h"
#include "tech/tech_parser.h"

namespace {

int usage() {
  std::puts(
      "usage: oasys --spec FILE [options]\n"
      "options:\n"
      "  --spec FILE     performance specification (key-value; see below)\n"
      "  --tech FILE     technology file (default: built-in 5 um CMOS)\n"
      "  --verify        run the circuit-simulator measurement suite\n"
      "  --export FILE   write the synthesized design as a SPICE deck\n"
      "  --trace         print the full plan-execution narrative\n"
      "  --no-rules      disable plan-patching rules (ablation)\n"
      "  --jobs N        worker threads for synthesis + simulation\n"
      "                  (default: hardware concurrency; 1 = serial;\n"
      "                  results are identical at every setting)\n"
      "  --templates     print the paper's test cases as spec templates\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oasys;

  std::string spec_path;
  std::string tech_path;
  std::string export_path;
  bool verify = false;
  bool trace = false;
  bool rules = true;
  bool templates = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--spec") {
      const char* v = next();
      if (v == nullptr) return usage();
      spec_path = v;
    } else if (arg == "--tech") {
      const char* v = next();
      if (v == nullptr) return usage();
      tech_path = v;
    } else if (arg == "--export") {
      const char* v = next();
      if (v == nullptr) return usage();
      export_path = v;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return usage();
      char* end = nullptr;
      errno = 0;
      const long n = std::strtol(v, &end, 10);
      if (errno == ERANGE || end == v || *end != '\0' || n < 1) {
        std::fprintf(stderr, "--jobs requires a positive integer, got '%s'\n",
                     v);
        return usage();
      }
      exec::set_default_jobs(static_cast<std::size_t>(n));
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--no-rules") {
      rules = false;
    } else if (arg == "--templates") {
      templates = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage();
    }
  }

  if (templates) {
    for (const auto& spec : synth::paper_test_cases()) {
      std::printf("# ---- paper test case %s ----\n%s\n",
                  spec.name.c_str(), core::to_spec_text(spec).c_str());
    }
    return 0;
  }
  if (spec_path.empty()) return usage();

  tech::Technology t = tech::five_micron();
  if (!tech_path.empty()) {
    const tech::ParseResult r = tech::load_tech_file(tech_path);
    if (!r.ok()) {
      std::fprintf(stderr, "technology file errors:\n%s",
                   r.log.to_string().c_str());
      return 1;
    }
    t = r.technology;
  }

  const core::SpecParseResult sr = core::load_opamp_spec_file(spec_path);
  if (!sr.ok()) {
    std::fprintf(stderr, "spec file errors:\n%s",
                 sr.log.to_string().c_str());
    return 1;
  }

  synth::SynthOptions opts;
  opts.rules_enabled = rules;
  const synth::SynthesisResult result =
      synth::synthesize_opamp(t, sr.spec, opts);

  if (trace) {
    std::fputs(synth::synthesis_report(result).c_str(), stdout);
  } else {
    std::fputs(sr.spec.to_string().c_str(), stdout);
    std::puts("style selection:");
    std::fputs(result.selection.summary.c_str(), stdout);
    if (result.success()) {
      std::fputs(synth::design_summary(*result.best()).c_str(), stdout);
      std::fputs(synth::device_table(*result.best()).c_str(), stdout);
    }
  }
  if (!result.success()) {
    std::puts("no feasible design.");
    return 1;
  }

  const synth::OpAmpDesign& best = *result.best();
  if (verify) {
    const synth::MeasuredOpAmp m = synth::measure_opamp(best, t);
    if (!m.ok) {
      std::fprintf(stderr, "verification failed: %s\n", m.error.c_str());
      return 1;
    }
    std::puts("\nspec vs predicted vs simulated:");
    std::fputs(synth::comparison_table(best, &m).c_str(), stdout);
  }
  if (!export_path.empty()) {
    ckt::SpiceWriterOptions wo;
    wo.title = "oasys synthesized op amp (" + best.style_name() + ")";
    std::ofstream out(export_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", export_path.c_str());
      return 1;
    }
    out << ckt::to_spice_deck(synth::build_standalone_opamp(best, t), t,
                              wo);
    std::printf("\nSPICE deck written to %s\n", export_path.c_str());
  }
  return 0;
}
