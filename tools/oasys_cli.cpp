// oasys — command-line driver for the synthesis framework.
//
// Mirrors the paper's tool interface: a technology file and a performance
// specification in, a sized transistor schematic and its verification out.
//
// Usage:
//   oasys --spec case_b.spec [--tech tech/cmos5.tech] [--verify]
//         [--export out.sp] [--trace] [--no-rules]
//   oasys batch DIR-OR-SPEC... [--tech FILE] [--jobs N]
//         [--cache-size N] [--no-cache] [--no-rules] [--no-stats]
//         [--connect SOCKET]
//   oasys shard DIR-OR-SPEC... [--workers N] [--worker-timeout S]
//         [batch options]
//   oasys serve --socket PATH [--workers N] [serve options]
//   oasys yield SPEC [--samples N] [--seed S] [--json] [options]
//   oasys golden DIR-OR-SPEC... [--tech FILE] [--dir DIR] [--no-rules]
//
// `yield` synthesizes a spec and runs deterministic Monte-Carlo mismatch
// analysis over it (src/yield/): N perturbed instances drawn from
// counter-based per-sample RNG streams, measured through the simulator
// hot path, reduced to per-metric statistics and an overall pass yield —
// bit-identical at every --jobs setting, worker count, and sample
// partitioning.  `batch --yield-samples N` runs the same analysis for
// every spec in the batch (and `shard`/`--connect` serve it remotely
// with byte-identical output).
//
// `shard` is `batch` across N worker processes: requests partition by
// canonical fingerprint, each worker runs a private SynthesisService, and
// the merged output is byte-identical to `batch` (compare with --no-stats,
// which drops the timing-bearing footer from both).  `serve` keeps that
// worker fleet resident behind a unix-domain socket; `batch --connect`
// routes the batch through the daemon with the same byte-identical
// output.  `shard-worker` is the internal child mode the coordinator
// spawns (`--session` is the daemon-pool variant); it speaks the wire
// protocol on stdin/stdout and is not for interactive use.  `golden`
// writes the canonical result JSON (oasys.result.v1) per spec — the
// regeneration path for tests/golden/.
//
// With no --spec, prints the built-in paper test cases as templates.
//
// Exit codes (scriptable): 0 = every requested synthesis selected a
// design; 1 = synthesis, verification, or input failure (including "no
// feasible style", any failed spec in a batch, and any shard worker
// failure); 2 = usage error.
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/spec_parser.h"
#include "exec/executor.h"
#include "netlist/spice_writer.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "serve/client.h"
#include "serve/server.h"
#include "service/service.h"
#include "shard/coordinator.h"
#include "shard/worker.h"
#include "spice/sim_options.h"
#include "synth/oasys.h"
#include "synth/report.h"
#include "synth/result_json.h"
#include "synth/sar_adc.h"
#include "synth/test_cases.h"
#include "synth/testbench.h"
#include "tech/builtin.h"
#include "tech/tech_parser.h"
#include "util/table.h"
#include "util/text.h"
#include "util/units.h"
#include "yield/service.h"
#include "yield/yield.h"

namespace {

int usage() {
  std::puts(
      "usage: oasys --spec FILE [options]\n"
      "       oasys batch DIR-OR-SPEC... [options]\n"
      "       oasys shard DIR-OR-SPEC... [--workers N] [batch options]\n"
      "       oasys serve --socket PATH [--workers N] [serve options]\n"
      "       oasys stat --connect SOCKET [--json]\n"
      "       oasys yield SPEC [--samples N] [--seed S] [--json] "
      "[options]\n"
      "       oasys golden DIR-OR-SPEC... [--dir DIR] [options]\n"
      "options:\n"
      "  --spec FILE     performance specification (key-value; see below)\n"
      "  --tech FILE     technology file (default: built-in 5 um CMOS)\n"
      "  --verify        run the circuit-simulator measurement suite\n"
      "  --export FILE   write the synthesized design as a SPICE deck\n"
      "  --trace         print the full plan-execution narrative and the\n"
      "                  span timeline\n"
      "  --metrics-json F  write the process metrics registry as JSON to F\n"
      "  --no-rules      disable plan-patching rules (ablation)\n"
      "  --jobs N        worker threads for synthesis + simulation\n"
      "                  (default: hardware concurrency; 1 = serial;\n"
      "                  results are identical at every setting)\n"
      "  --device-eval M MOS evaluation path: 'batch' (SoA kernel,\n"
      "                  default) or 'scalar' (per-device reference);\n"
      "                  bit-for-bit identical results either way\n"
      "  --tran-mode M   transient integrator: 'fixed' (uniform-step\n"
      "                  reference, default) or 'adaptive' (embedded-error\n"
      "                  step control; tolerance-equal to fixed, not\n"
      "                  bit-equal, so the mode is part of cache keys and\n"
      "                  the wire config — fixed and adaptive never share\n"
      "                  a cache entry)\n"
      "  --tran-rtol R   adaptive relative error tolerance (default 1e-3)\n"
      "  --tran-atol A   adaptive absolute error tolerance (default 1e-6)\n"
      "  --templates     print the paper's test cases as spec templates\n"
      "batch mode (runs every .spec through the synthesis service):\n"
      "  --cache-size N  result-cache capacity in entries (default 256;\n"
      "                  0 disables the cache)\n"
      "  --no-cache      disable the result cache\n"
      "  --no-stats      omit the timing-bearing service/metrics footer,\n"
      "                  leaving only deterministic output (batch and\n"
      "                  shard print identical bytes under this flag)\n"
      "  --connect SOCK  route the batch through a running `oasys serve`\n"
      "                  daemon at the unix socket SOCK (output stays\n"
      "                  byte-identical to a local batch)\n"
      "  --sort ORDER    summary row order: 'name' (spec name) or\n"
      "                  'latency' (slowest first; local batch only).\n"
      "                  Default: submission order — operands in the\n"
      "                  order given, directories expanded sorted by\n"
      "                  path\n"
      "  --yield-samples N  run Monte-Carlo yield analysis with N\n"
      "                  mismatch samples per spec instead of plain\n"
      "                  synthesis (batch, shard, and --connect print\n"
      "                  byte-identical summaries)\n"
      "  --yield-seed S  yield analysis RNG seed (default 1)\n"
      "  --trace         print the merged span timeline after the summary\n"
      "                  (batch and shard: one trace id per run, every\n"
      "                  request tagged with a span id that survives the\n"
      "                  trip through workers and the daemon)\n"
      "  --trace-json F  write the merged timeline as a Chrome trace-event\n"
      "                  JSON file (load in Perfetto / chrome://tracing);\n"
      "                  coordinator and worker spans share one trace id.\n"
      "                  Tracing never changes deterministic output bytes\n"
      "shard mode (batch across worker processes; same results, same\n"
      "output):\n"
      "  --workers N     worker process count (default 2)\n"
      "  --worker-timeout S  per-worker progress deadline in seconds; a\n"
      "                  worker silent for S seconds is killed and its\n"
      "                  specs get deterministic errors (default: off)\n"
      "serve mode (resident daemon; clients attach via batch --connect):\n"
      "  --socket PATH   unix-domain socket to listen on (required)\n"
      "  --workers N     resident worker process count (default 2)\n"
      "  --worker-timeout S  per-worker progress deadline (default 30)\n"
      "  --shared-cache-size N  coordinator-owned shared result-cache\n"
      "                  entries consulted before routing (default 256;\n"
      "                  0 disables the shared tier)\n"
      "  --slow-ms T     log a structured JSON record to stderr for every\n"
      "                  request answered more than T ms after its cycle\n"
      "                  was dispatched (0 disables; timing-class only)\n"
      "  SIGTERM/SIGINT drain gracefully: in-flight batches finish,\n"
      "  workers exit at cycle boundaries, then the daemon exits 0\n"
      "stat mode (live daemon introspection over the admin frame):\n"
      "  --connect SOCK  daemon socket to query (required)\n"
      "  --json          print the canonical oasys.status.v1 document\n"
      "                  instead of the human table\n"
      "yield mode (deterministic Monte-Carlo mismatch analysis):\n"
      "  --samples N     mismatch sample count (default 200)\n"
      "  --seed S        RNG seed (default 1); (seed, sample index)\n"
      "                  fully determine each sample's perturbation, so\n"
      "                  results are bit-identical at every --jobs\n"
      "                  setting and worker count\n"
      "  --json          print the canonical oasys.result.v1 document\n"
      "                  with its yield section instead of the summary\n"
      "golden mode (canonical result JSON per spec, for tests/golden/):\n"
      "  --dir DIR       write DIR/<tech>_<spec>.json instead of stdout\n"
      "  --yield-samples N / --yield-seed S  write yield documents\n"
      "                  (DIR/<tech>_<spec>_yield.json) instead\n"
      "  --tol           write the tolerance-pinned golden suite\n"
      "                  (oasys.tol.v1: built-in op-amp, comparator, and\n"
      "                  SAR subjects measured under the adaptive\n"
      "                  transient, each with its per-metric tolerance\n"
      "                  envelopes; DIR/tol_<tech>_<subject>.json).\n"
      "                  Spec operands are ignored; defaults to\n"
      "                  --tran-mode adaptive unless one is given\n"
      "exit codes: 0 success, 1 synthesis/verification/input failure\n"
      "(including no feasible style), 2 usage error\n");
  return 2;
}

// Parses a non-negative integer CLI value; returns false on garbage.
bool parse_count(const char* v, long min_value, long* out) {
  char* end = nullptr;
  errno = 0;
  const long n = std::strtol(v, &end, 10);
  if (errno == ERANGE || end == v || *end != '\0' || n < min_value) {
    return false;
  }
  *out = n;
  return true;
}

// Parses a non-negative seconds value (fractions allowed; 0 disables the
// deadline it configures).
bool parse_seconds(const char* v, double* out) {
  char* end = nullptr;
  errno = 0;
  const double s = std::strtod(v, &end);
  if (errno == ERANGE || end == v || *end != '\0' || s < 0.0 ||
      !(s == s)) {
    return false;
  }
  *out = s;
  return true;
}

bool apply_jobs(const char* v, long* out = nullptr) {
  long n = 0;
  if (!parse_count(v, 1, &n)) {
    std::fprintf(stderr, "--jobs requires a positive integer, got '%s'\n",
                 v);
    return false;
  }
  oasys::exec::set_default_jobs(static_cast<std::size_t>(n));
  if (out != nullptr) *out = n;
  return true;
}

// Sets the process-wide MOS device-evaluation path (scalar reference or
// SoA batch kernel).  The two are bit-for-bit identical, so this is a
// performance knob only; output never depends on it.
bool apply_device_eval(const char* v) {
  oasys::sim::DeviceEval mode = oasys::sim::DeviceEval::kDefault;
  if (!oasys::sim::parse_device_eval(v, &mode)) {
    std::fprintf(stderr,
                 "--device-eval must be 'scalar' or 'batch', got '%s'\n", v);
    return false;
  }
  oasys::sim::set_device_eval_default(mode);
  return true;
}

// Sets the process-wide transient stepping strategy.  Unlike
// --device-eval this is semantically meaningful: adaptive results are
// tolerance-equal, not bit-equal, to fixed-step, so the resolved mode is
// also stamped into every SynthOptions (stamp_tran_options) where it
// enters cache keys and the wire config.
bool apply_tran_mode(const char* v) {
  oasys::sim::TranMode mode = oasys::sim::TranMode::kDefault;
  if (!oasys::sim::parse_tran_mode(v, &mode)) {
    std::fprintf(stderr,
                 "--tran-mode must be 'fixed' or 'adaptive', got '%s'\n", v);
    return false;
  }
  oasys::sim::set_tran_mode_default(mode);
  return true;
}

bool apply_tran_tolerance(const char* flag, const char* v, bool is_rtol) {
  char* end = nullptr;
  errno = 0;
  const double tol = std::strtod(v, &end);
  if (errno == ERANGE || end == v || *end != '\0' || !(tol > 0.0) ||
      !(tol < 1e300)) {
    std::fprintf(stderr, "%s requires a positive number, got '%s'\n", flag,
                 v);
    return false;
  }
  const oasys::sim::TranTolerance cur = oasys::sim::tran_tolerance_default();
  oasys::sim::set_tran_tolerance_default(is_rtol ? tol : cur.rtol,
                                         is_rtol ? cur.atol : tol);
  return true;
}

// Stamps the fully resolved transient-engine selection into the options
// that travel to services and worker processes.  Values are never left as
// kDefault / 0 here: the canonical fingerprint — and therefore cache keys,
// shard routing, and the wire config hash — must be identical no matter
// which process re-derives it (the shard worker's drift guard re-hashes
// the decoded struct and refuses to serve on mismatch).
void stamp_tran_options(oasys::synth::SynthOptions* opts) {
  opts->tran_mode =
      oasys::sim::resolve_tran_mode(oasys::sim::TranMode::kDefault);
  const oasys::sim::TranTolerance tol = oasys::sim::tran_tolerance_default();
  opts->tran_rtol = tol.rtol;
  opts->tran_atol = tol.atol;
}

// Writes the metrics registry as JSON when a --metrics-json path was
// given.  Returns false (exit code 1) when the file cannot be written.
bool write_metrics(const std::string& path) {
  if (path.empty()) return true;
  if (!oasys::obs::write_metrics_json(path)) return false;
  std::printf("metrics written to %s\n", path.c_str());
  return true;
}

// Shard mode writes the coordinator's merged snapshot, not this process's
// registry (the coordinator itself synthesizes nothing).
bool write_metrics_snapshot(const std::string& path,
                            const oasys::obs::MetricsSnapshot& snapshot) {
  if (path.empty()) return true;
  std::ofstream out(path);
  if (out) out << oasys::obs::metrics_json(snapshot) << "\n";
  if (!out) {
    std::fprintf(stderr, "cannot write metrics JSON to '%s'\n",
                 path.c_str());
    return false;
  }
  std::printf("metrics written to %s\n", path.c_str());
  return true;
}

// Loads the technology (built-in 5 um CMOS unless a file is given).
// Returns false after printing diagnostics.
bool load_technology(const std::string& tech_path, oasys::tech::Technology* t) {
  *t = oasys::tech::five_micron();
  if (tech_path.empty()) return true;
  const oasys::tech::ParseResult r = oasys::tech::load_tech_file(tech_path);
  if (!r.ok()) {
    std::fprintf(stderr, "technology file errors:\n%s",
                 r.log.to_string().c_str());
    return false;
  }
  *t = r.technology;
  return true;
}

// Expands batch operands: a directory contributes every *.spec inside it
// (sorted by name for a stable run order), anything else is taken as a
// spec file path.
std::vector<std::string> expand_spec_paths(
    const std::vector<std::string>& operands) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (const std::string& op : operands) {
    std::error_code ec;
    if (fs::is_directory(op, ec)) {
      std::vector<std::string> found;
      for (const auto& ent : fs::directory_iterator(op, ec)) {
        if (ent.path().extension() == ".spec") {
          found.push_back(ent.path().string());
        }
      }
      std::sort(found.begin(), found.end());
      paths.insert(paths.end(), found.begin(), found.end());
    } else {
      paths.push_back(op);
    }
  }
  return paths;
}

// Parses the spec files named by `operands`; parse failures go to stderr
// and set *parse_failed without aborting the rest of the batch.
bool load_specs(const std::vector<std::string>& operands,
                std::vector<std::string>* spec_paths,
                std::vector<oasys::core::OpAmpSpec>* specs,
                bool* parse_failed) {
  const std::vector<std::string> paths = expand_spec_paths(operands);
  if (paths.empty()) {
    std::fprintf(stderr, "no .spec files found\n");
    return false;
  }
  for (const std::string& path : paths) {
    const oasys::core::SpecParseResult sr =
        oasys::core::load_opamp_spec_file(path);
    if (!sr.ok()) {
      std::fprintf(stderr, "%s: spec errors:\n%s", path.c_str(),
                   sr.log.to_string().c_str());
      *parse_failed = true;
      continue;
    }
    spec_paths->push_back(path);
    specs->push_back(sr.spec);
  }
  return true;
}

// One synthesis row in the batch/shard summary table.  Shared by the
// plain and mixed printers so identical outcomes print identical bytes
// (the conformance tests byte-compare batch against shard/--connect).
void add_synth_row(oasys::util::Table& table, const std::string& spec_path,
                   const oasys::synth::SynthesisResult& r, int* failures) {
  using namespace oasys;
  if (r.success()) {
    const synth::OpAmpDesign& best = *r.best();
    table.add_row({spec_path, r.spec.name, best.style_name(),
                   best.soft_violations > 0 ? "first-cut" : "ok",
                   util::format("%.0f", util::in_um2(best.predicted.area)),
                   ""});
  } else {
    ++*failures;
    table.add_row({spec_path, r.spec.name, "-", "FAIL", "-",
                   synth::failure_brief(r)});
  }
}

void print_summary_footer(int failures, int errors, std::size_t n) {
  if (failures > 0) {
    std::printf("%d of %zu specs selected no feasible style.\n", failures,
                n);
  }
  if (errors > 0) {
    std::printf("%d of %zu specs failed with errors.\n", errors, n);
  }
}

// Renders the per-spec summary table shared by batch and shard mode —
// identical outcomes must print identical bytes, since the shard
// conformance tests byte-compare the two.  An outcome is any type with
// `result`, `error`, and ok() (service::BatchOutcome, shard::ShardOutcome).
// `failures` counts specs that selected no feasible style; `errors` counts
// specs whose synthesis (or worker) failed outright.
template <typename Outcome>
void print_summary(const std::vector<std::string>& spec_paths,
                   const std::vector<oasys::core::OpAmpSpec>& specs,
                   const std::vector<Outcome>& outcomes, int* failures,
                   int* errors) {
  using namespace oasys;
  util::Table table({"spec", "name", "style", "result", "area um^2",
                     "detail"});
  table.set_align(4, util::Align::kRight);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const Outcome& o = outcomes[i];
    if (!o.ok()) {
      ++*errors;
      table.add_row({spec_paths[i], specs[i].name, "-", "ERROR", "-",
                     o.error});
      continue;
    }
    add_synth_row(table, spec_paths[i], o.result, failures);
  }
  std::fputs(table.to_string().c_str(), stdout);
  print_summary_footer(*failures, *errors, outcomes.size());
}

// print_summary for mixed synthesis/yield outcomes (yield::Outcome,
// shard::ShardOutcome): yield rows carry the pass yield in the detail
// column.  Byte-identity between batch, shard, and --connect holds here
// too — all three print through this one function.
template <typename Outcome>
void print_mixed_summary(const std::vector<std::string>& spec_paths,
                         const std::vector<oasys::core::OpAmpSpec>& specs,
                         const std::vector<Outcome>& outcomes,
                         int* failures, int* errors) {
  using namespace oasys;
  util::Table table({"spec", "name", "style", "result", "area um^2",
                     "detail"});
  table.set_align(4, util::Align::kRight);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const Outcome& o = outcomes[i];
    if (!o.ok()) {
      ++*errors;
      table.add_row({spec_paths[i], specs[i].name, "-", "ERROR", "-",
                     o.error});
      continue;
    }
    if (!o.is_yield) {
      add_synth_row(table, spec_paths[i], o.result, failures);
      continue;
    }
    const yield::YieldResult& y = o.yield;
    if (!y.ok) {
      ++*failures;
      table.add_row({spec_paths[i], specs[i].name, "-", "FAIL", "-",
                     y.error});
      continue;
    }
    const synth::OpAmpDesign& best = *y.synthesis.best();
    table.add_row(
        {spec_paths[i], y.synthesis.spec.name, best.style_name(),
         best.soft_violations > 0 ? "first-cut" : "ok",
         util::format("%.0f", util::in_um2(best.predicted.area)),
         util::format("yield %.1f%% (%llu/%d)", y.yield * 100.0,
                      static_cast<unsigned long long>(y.pass_count),
                      y.samples_requested)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  print_summary_footer(*failures, *errors, outcomes.size());
}

// Reorders the summary rows for --sort.  Sorting is presentation only —
// outcomes are computed in submission order and stay bit-identical; a
// stable sort keeps submission order among ties.  'latency' is only
// instantiated for outcome types that carry a service time.
template <typename Outcome>
void sort_rows(const std::string& order,
               std::vector<std::string>* spec_paths,
               std::vector<oasys::core::OpAmpSpec>* specs,
               std::vector<Outcome>* outcomes) {
  if (order.empty()) return;
  std::vector<std::size_t> idx(outcomes->size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  if (order == "name") {
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::size_t a, std::size_t b) {
                       return (*specs)[a].name < (*specs)[b].name;
                     });
  } else if (order == "latency") {
    if constexpr (requires(const Outcome& o) { o.seconds; }) {
      // Slowest first: the rows worth looking at float to the top.
      std::stable_sort(idx.begin(), idx.end(),
                       [&](std::size_t a, std::size_t b) {
                         return (*outcomes)[a].seconds >
                                (*outcomes)[b].seconds;
                       });
    }
  }
  std::vector<std::string> paths2(idx.size());
  std::vector<oasys::core::OpAmpSpec> specs2(idx.size());
  std::vector<Outcome> outcomes2(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    paths2[i] = std::move((*spec_paths)[idx[i]]);
    specs2[i] = std::move((*specs)[idx[i]]);
    outcomes2[i] = std::move((*outcomes)[idx[i]]);
  }
  *spec_paths = std::move(paths2);
  *specs = std::move(specs2);
  *outcomes = std::move(outcomes2);
}

// Options shared by batch and shard mode.
struct BatchArgs {
  std::vector<std::string> operands;
  std::string tech_path;
  std::string metrics_path;
  std::string connect_path;  // batch mode only: route through a daemon
  std::string sort;          // batch mode only: "", "name", or "latency"
  std::string trace_json_path;  // --trace-json: Chrome trace-event file
  bool trace = false;           // --trace: print the merged span timeline
  bool rules = true;
  bool show_stats = true;
  long jobs = 0;               // 0 = default concurrency
  long workers = 2;            // shard mode only
  double worker_timeout = 0.0;  // shard mode only; 0 = no deadline
  long yield_samples = 0;      // > 0: every spec becomes a yield request
  long yield_seed = 1;
  oasys::service::ServiceOptions sopts;
};

// Returns 0 on success, 2 (after usage()) on a bad command line.
int parse_batch_args(int argc, char** argv, bool shard_mode,
                     BatchArgs* out) {
  using oasys::util::starts_with;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--tech") {
      const char* v = next();
      if (v == nullptr) return usage();
      out->tech_path = v;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr || !apply_jobs(v, &out->jobs)) return usage();
    } else if (arg == "--device-eval") {
      const char* v = next();
      if (v == nullptr || !apply_device_eval(v)) return usage();
    } else if (arg == "--tran-mode") {
      const char* v = next();
      if (v == nullptr || !apply_tran_mode(v)) return usage();
    } else if (arg == "--tran-rtol") {
      const char* v = next();
      if (v == nullptr || !apply_tran_tolerance("--tran-rtol", v, true)) {
        return usage();
      }
    } else if (arg == "--tran-atol") {
      const char* v = next();
      if (v == nullptr || !apply_tran_tolerance("--tran-atol", v, false)) {
        return usage();
      }
    } else if (arg == "--cache-size") {
      const char* v = next();
      long n = 0;
      if (v == nullptr || !parse_count(v, 0, &n)) {
        std::fprintf(stderr,
                     "--cache-size requires a non-negative integer\n");
        return usage();
      }
      out->sopts.cache_capacity = static_cast<std::size_t>(n);
      if (n == 0) out->sopts.cache_enabled = false;
    } else if (arg == "--no-cache") {
      out->sopts.cache_enabled = false;
    } else if (arg == "--metrics-json") {
      const char* v = next();
      if (v == nullptr) return usage();
      out->metrics_path = v;
    } else if (arg == "--no-rules") {
      out->rules = false;
    } else if (arg == "--no-stats") {
      out->show_stats = false;
    } else if (arg == "--trace") {
      out->trace = true;
    } else if (arg == "--trace-json") {
      const char* v = next();
      if (v == nullptr) return usage();
      out->trace_json_path = v;
    } else if (shard_mode && arg == "--workers") {
      const char* v = next();
      if (v == nullptr || !parse_count(v, 1, &out->workers)) {
        std::fprintf(stderr, "--workers requires a positive integer\n");
        return usage();
      }
    } else if (shard_mode && arg == "--worker-timeout") {
      const char* v = next();
      if (v == nullptr || !parse_seconds(v, &out->worker_timeout)) {
        std::fprintf(stderr,
                     "--worker-timeout requires a non-negative number of "
                     "seconds\n");
        return usage();
      }
    } else if (!shard_mode && arg == "--connect") {
      const char* v = next();
      if (v == nullptr) return usage();
      out->connect_path = v;
    } else if (!shard_mode && arg == "--sort") {
      const char* v = next();
      if (v == nullptr ||
          (std::string(v) != "name" && std::string(v) != "latency")) {
        std::fprintf(stderr, "--sort must be 'name' or 'latency'\n");
        return usage();
      }
      out->sort = v;
    } else if (arg == "--yield-samples") {
      const char* v = next();
      if (v == nullptr || !parse_count(v, 1, &out->yield_samples)) {
        std::fprintf(stderr,
                     "--yield-samples requires a positive integer\n");
        return usage();
      }
    } else if (arg == "--yield-seed") {
      const char* v = next();
      if (v == nullptr || !parse_count(v, 0, &out->yield_seed)) {
        std::fprintf(stderr,
                     "--yield-seed requires a non-negative integer\n");
        return usage();
      }
    } else if (starts_with(arg, "--")) {
      std::fprintf(stderr, "unknown %s option '%s'\n",
                   shard_mode ? "shard" : "batch", arg.c_str());
      return usage();
    } else {
      out->operands.push_back(arg);
    }
  }
  if (out->operands.empty()) {
    std::fprintf(stderr, "%s mode needs at least one spec file or "
                         "directory\n",
                 shard_mode ? "shard" : "batch");
    return usage();
  }
  // Latency sorting needs the per-request service time, which only the
  // local synthesis service reports.
  if (out->sort == "latency" &&
      (!out->connect_path.empty() || out->yield_samples > 0)) {
    std::fprintf(stderr,
                 "--sort latency is only available for a plain local "
                 "batch (not --connect or --yield-samples)\n");
    return usage();
  }
  return 0;
}

// Builds the mixed request list for --yield-samples: every spec becomes
// one yield request with the batch's (samples, seed).
std::vector<oasys::yield::Request> yield_requests(
    const std::vector<oasys::core::OpAmpSpec>& specs,
    const BatchArgs& args) {
  std::vector<oasys::yield::Request> requests(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    requests[i].spec = specs[i];
    requests[i].is_yield = true;
    requests[i].params.samples = static_cast<int>(args.yield_samples);
    requests[i].params.seed =
        static_cast<std::uint64_t>(args.yield_seed);
  }
  return requests;
}

// Tags every request with the run's trace id and a per-request span id
// derived from the submission index — the same derivation the shard
// coordinator uses, so local, --connect, and shard runs correlate the
// same way.  No-op (and no byte changes anywhere) when tracing is off.
void apply_trace_ids(std::uint64_t trace_id,
                     std::vector<oasys::yield::Request>* requests) {
  if (trace_id == 0) return;
  for (std::size_t i = 0; i < requests->size(); ++i) {
    (*requests)[i].trace_id = trace_id;
    (*requests)[i].span_id = oasys::obs::span_id_for(trace_id, i);
  }
}

// Renders the merged cross-process timeline after a traced run: this
// process's own events (drained from the global collector — the
// coordinator lane) plus every worker span set, correlated by trace id.
// --trace prints the text view after the summary; --trace-json writes
// the Chrome trace-event file (Perfetto-loadable).  All of it is
// timing-class output — the deterministic summary bytes above are
// already printed and untouched.  Returns false when the JSON file
// cannot be written.
bool export_batch_trace(const BatchArgs& args, std::uint64_t trace_id,
                        const std::vector<oasys::shard::SpanSet>& spans) {
  using namespace oasys;
  if (trace_id == 0) return true;

  std::vector<obs::TraceProcess> processes;
  processes.push_back(
      obs::TraceProcess{0, "coordinator", obs::drain_global_trace()});
  // One lane per shard (pid = shard + 1); a shard's span sets arrive in
  // flush order, so appending keeps each lane's events in emit order.
  for (const shard::SpanSet& set : spans) {
    const std::uint64_t lane = set.shard + 1;
    auto it = std::find_if(
        processes.begin(), processes.end(),
        [&](const obs::TraceProcess& p) { return p.pid == lane; });
    if (it == processes.end()) {
      processes.push_back(obs::TraceProcess{
          lane, util::format("worker %llu",
                             static_cast<unsigned long long>(set.shard)),
          {}});
      it = processes.end() - 1;
    }
    it->events.insert(it->events.end(), set.events.begin(),
                      set.events.end());
  }

  if (args.trace) {
    std::printf("\ntrace %016llx:\n",
                static_cast<unsigned long long>(trace_id));
    for (const obs::TraceProcess& p : processes) {
      if (p.events.empty()) continue;
      std::printf("-- %s --\n", p.name.c_str());
      std::fputs(obs::trace_text(p.events).c_str(), stdout);
    }
  }
  if (!args.trace_json_path.empty()) {
    std::ofstream out(args.trace_json_path);
    if (out) out << obs::trace_chrome_json(processes, trace_id) << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write trace JSON to '%s'\n",
                   args.trace_json_path.c_str());
      return false;
    }
    std::printf("trace written to %s\n", args.trace_json_path.c_str());
  }
  return true;
}

// `oasys batch`: every spec file through the synthesis service, then a
// summary table plus (unless --no-stats) the service's cache/latency
// statistics.  Returns 1 when any spec fails to parse, errors out, or
// selects no feasible style.
int run_batch_mode(int argc, char** argv) {
  using namespace oasys;

  BatchArgs args;
  if (const int rc = parse_batch_args(argc, argv, /*shard_mode=*/false,
                                      &args);
      rc != 0) {
    return rc;
  }

  tech::Technology t;
  if (!load_technology(args.tech_path, &t)) return 1;

  std::vector<std::string> spec_paths;
  std::vector<core::OpAmpSpec> specs;
  bool parse_failed = false;
  if (!load_specs(args.operands, &spec_paths, &specs, &parse_failed)) {
    return 1;
  }

  synth::SynthOptions opts;
  opts.rules_enabled = args.rules;
  stamp_tran_options(&opts);

  // Tracing mints one trace id for the whole run and turns on the global
  // span collector; every request is tagged so worker spans correlate.
  // Deterministic output is untouched — the timeline renders after the
  // summary (--trace) or into a separate file (--trace-json).
  std::uint64_t trace_id = 0;
  if (args.trace || !args.trace_json_path.empty()) {
    obs::set_tracing_enabled(true);
    trace_id = obs::mint_trace_id();
  }

  // --connect: same specs, same outcomes, same summary bytes — the work
  // just runs in the daemon's resident worker pool instead of here.
  if (!args.connect_path.empty()) {
    serve::ConnectReport report;
    serve::MixedConnectReport mixed;
    int failures = 0;
    int errors = 0;
    try {
      if (args.yield_samples > 0) {
        std::vector<yield::Request> requests = yield_requests(specs, args);
        apply_trace_ids(trace_id, &requests);
        mixed = serve::run_connected_mixed(args.connect_path, t, opts,
                                           requests);
      } else {
        report = serve::run_connected_batch(args.connect_path, t, opts,
                                            specs, trace_id);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    if (args.yield_samples > 0) {
      report.metrics = std::move(mixed.metrics);
      report.stats = mixed.stats;
      report.worker_spans = std::move(mixed.worker_spans);
      sort_rows(args.sort, &spec_paths, &specs, &mixed.outcomes);
      print_mixed_summary(spec_paths, specs, mixed.outcomes, &failures,
                          &errors);
    } else {
      sort_rows(args.sort, &spec_paths, &specs, &report.outcomes);
      print_summary(spec_paths, specs, report.outcomes, &failures,
                    &errors);
    }
    if (args.show_stats) {
      const service::ServiceStats& st = report.stats;
      std::printf(
          "\nserve: daemon at %s\n"
          "workers (cumulative): %llu requests, %llu hits, %llu misses, "
          "%llu dedup joins, %llu evictions\n",
          args.connect_path.c_str(),
          static_cast<unsigned long long>(st.requests),
          static_cast<unsigned long long>(st.hits),
          static_cast<unsigned long long>(st.misses),
          static_cast<unsigned long long>(st.dedup_joins),
          static_cast<unsigned long long>(st.evictions));
      std::puts("\nmetrics (daemon merged):");
      std::fputs(obs::metrics_table(report.metrics).c_str(), stdout);
    }
    if (!export_batch_trace(args, trace_id, report.worker_spans)) return 1;
    if (!write_metrics_snapshot(args.metrics_path, report.metrics)) {
      return 1;
    }
    return (failures > 0 || errors > 0 || parse_failed) ? 1 : 0;
  }

  // Local run: plain synthesis through the SynthesisService, or (with
  // --yield-samples) the mixed path through the YieldService that the
  // shard workers also use — so the summary bytes match `oasys shard`.
  int failures = 0;
  int errors = 0;
  service::ServiceStats stats;
  if (args.yield_samples > 0) {
    yield::YieldService svc(t, opts, args.sopts);
    std::vector<yield::Request> requests = yield_requests(specs, args);
    apply_trace_ids(trace_id, &requests);
    std::vector<yield::Outcome> outcomes = svc.run_mixed(requests);
    stats = svc.stats();
    sort_rows(args.sort, &spec_paths, &specs, &outcomes);
    print_mixed_summary(spec_paths, specs, outcomes, &failures, &errors);
  } else {
    service::SynthesisService svc(t, opts, args.sopts);
    std::vector<service::BatchOutcome> outcomes =
        svc.run_batch_outcomes(specs);
    stats = svc.stats();
    sort_rows(args.sort, &spec_paths, &specs, &outcomes);
    print_summary(spec_paths, specs, outcomes, &failures, &errors);
  }

  if (args.show_stats) {
    const service::ServiceStats st = stats;
    const double hit_ratio =
        st.requests == 0
            ? 0.0
            : static_cast<double>(st.hits) /
                  static_cast<double>(st.requests);
    std::printf(
        "\nservice: %llu requests, %llu hits, %llu misses, %llu dedup "
        "joins, %llu evictions\n"
        "cache hit ratio %.1f%%, queue high-water %zu, cache entries %zu "
        "(%s)\n",
        static_cast<unsigned long long>(st.requests),
        static_cast<unsigned long long>(st.hits),
        static_cast<unsigned long long>(st.misses),
        static_cast<unsigned long long>(st.dedup_joins),
        static_cast<unsigned long long>(st.evictions), hit_ratio * 100.0,
        st.queue_high_water, st.cache_size,
        args.sopts.cache_enabled ? "enabled" : "disabled");
    std::printf(
        "latency per request: min %.3f ms, p50 %.3f ms, mean %.3f ms, "
        "p95 %.3f ms, max %.3f ms\n",
        st.latency.min_s * 1e3, st.latency.p50_s * 1e3,
        st.latency.mean_s * 1e3, st.latency.p95_s * 1e3,
        st.latency.max_s * 1e3);

    // Per-layer metrics summary: what the batch actually did downstream
    // of the service (plan steps, Newton iterations, executor traffic).
    std::puts("\nmetrics:");
    std::fputs(
        obs::metrics_table(obs::Registry::global().snapshot()).c_str(),
        stdout);
  }

  // A local run has no worker lanes: everything this process emitted —
  // including the per-request spans the service tagged with their span
  // ids — lands in the coordinator lane.
  if (!export_batch_trace(args, trace_id, {})) return 1;
  if (!write_metrics(args.metrics_path)) return 1;
  return (failures > 0 || errors > 0 || parse_failed) ? 1 : 0;
}

// Path of the running binary, for respawning as `oasys shard-worker`.
std::string self_executable(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
  return argv0 != nullptr ? std::string(argv0) : std::string();
}

// `oasys shard`: the batch workload partitioned across worker processes.
// The summary table is byte-identical to batch mode; the footer reports
// per-worker traffic and the merged metrics instead of one service's.
int run_shard_mode(int argc, char** argv, const char* argv0) {
  using namespace oasys;

  BatchArgs args;
  if (const int rc = parse_batch_args(argc, argv, /*shard_mode=*/true,
                                      &args);
      rc != 0) {
    return rc;
  }

  tech::Technology t;
  if (!load_technology(args.tech_path, &t)) return 1;

  std::vector<std::string> spec_paths;
  std::vector<core::OpAmpSpec> specs;
  bool parse_failed = false;
  if (!load_specs(args.operands, &spec_paths, &specs, &parse_failed)) {
    return 1;
  }

  synth::SynthOptions opts;
  opts.rules_enabled = args.rules;
  // Workers are separate processes: the coordinator's thread default does
  // not reach them, so --jobs travels in the options instead (and the
  // transient-engine selection travels fully resolved the same way).
  opts.jobs = static_cast<std::size_t>(args.jobs);
  stamp_tran_options(&opts);

  shard::ShardOptions shopts;
  shopts.workers = static_cast<std::size_t>(args.workers);
  shopts.service = args.sopts;
  shopts.worker_timeout_s = args.worker_timeout;
  shopts.worker_command = self_executable(argv0);
  if (shopts.worker_command.empty()) {
    std::fprintf(stderr, "shard: cannot determine own executable path\n");
    return 1;
  }
  // Tracing: the coordinator mints the run's trace id, tags every routed
  // request, and collects worker span sets alongside the results.
  if (args.trace || !args.trace_json_path.empty()) {
    obs::set_tracing_enabled(true);
    shopts.trace_id = obs::mint_trace_id();
  }

  const shard::ShardReport report =
      args.yield_samples > 0
          ? shard::run_sharded_requests(t, opts,
                                        yield_requests(specs, args),
                                        shopts)
          : shard::run_sharded_batch(t, opts, specs, shopts);

  int failures = 0;
  int errors = 0;
  if (args.yield_samples > 0) {
    print_mixed_summary(spec_paths, specs, report.outcomes, &failures,
                        &errors);
  } else {
    print_summary(spec_paths, specs, report.outcomes, &failures, &errors);
  }

  if (args.show_stats) {
    std::printf("\nshard: %zu workers\n", report.workers.size());
    for (const shard::WorkerSummary& w : report.workers) {
      const service::ServiceStats& st = w.stats;
      std::printf(
          "  worker %zu: %zu requests routed, %llu hits, %llu misses, "
          "%llu dedup joins, %llu evictions — %s\n",
          w.shard, w.requests, static_cast<unsigned long long>(st.hits),
          static_cast<unsigned long long>(st.misses),
          static_cast<unsigned long long>(st.dedup_joins),
          static_cast<unsigned long long>(st.evictions),
          w.ok() ? "ok" : w.error.c_str());
    }
    std::puts("\nmetrics (merged across workers):");
    std::fputs(obs::metrics_table(report.merged_metrics).c_str(), stdout);
  }

  if (!report.infra_ok()) {
    for (const shard::WorkerSummary& w : report.workers) {
      if (!w.ok()) {
        std::fprintf(stderr, "shard: %s\n", w.error.c_str());
      }
    }
  }

  if (!export_batch_trace(args, shopts.trace_id, report.worker_spans)) {
    return 1;
  }
  if (!write_metrics_snapshot(args.metrics_path, report.merged_metrics)) {
    return 1;
  }
  return (failures > 0 || errors > 0 || parse_failed ||
          !report.infra_ok())
             ? 1
             : 0;
}

// SIGTERM/SIGINT must trigger a graceful drain; request_stop is
// async-signal-safe (one write to the server's self-pipe).
oasys::serve::Server* g_serve_server = nullptr;

void serve_signal_handler(int) {
  if (g_serve_server != nullptr) g_serve_server->request_stop();
}

// `oasys serve`: resident daemon behind a unix-domain socket.  Clients
// attach with `oasys batch --connect SOCKET`; output over there is
// byte-identical to a local batch.  Runs until SIGTERM/SIGINT, then
// drains gracefully and exits 0.
int run_serve_mode(int argc, char** argv, const char* argv0) {
  using namespace oasys;

  serve::ServeOptions sv;
  std::string tech_path;
  bool rules = true;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) return usage();
      sv.socket_path = v;
    } else if (arg == "--workers") {
      long n = 0;
      const char* v = next();
      if (v == nullptr || !parse_count(v, 1, &n)) {
        std::fprintf(stderr, "--workers requires a positive integer\n");
        return usage();
      }
      sv.workers = static_cast<std::size_t>(n);
    } else if (arg == "--worker-timeout") {
      const char* v = next();
      if (v == nullptr || !parse_seconds(v, &sv.worker_timeout_s)) {
        std::fprintf(stderr,
                     "--worker-timeout requires a non-negative number of "
                     "seconds\n");
        return usage();
      }
    } else if (arg == "--shared-cache-size") {
      long n = 0;
      const char* v = next();
      if (v == nullptr || !parse_count(v, 0, &n)) {
        std::fprintf(stderr,
                     "--shared-cache-size requires a non-negative "
                     "integer\n");
        return usage();
      }
      sv.shared_cache_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--slow-ms") {
      const char* v = next();
      if (v == nullptr || !parse_seconds(v, &sv.slow_ms)) {
        std::fprintf(stderr,
                     "--slow-ms requires a non-negative number of "
                     "milliseconds\n");
        return usage();
      }
    } else if (arg == "--cache-size") {
      long n = 0;
      const char* v = next();
      if (v == nullptr || !parse_count(v, 0, &n)) {
        std::fprintf(stderr,
                     "--cache-size requires a non-negative integer\n");
        return usage();
      }
      sv.service.cache_capacity = static_cast<std::size_t>(n);
      if (n == 0) sv.service.cache_enabled = false;
    } else if (arg == "--no-cache") {
      sv.service.cache_enabled = false;
    } else if (arg == "--tech") {
      const char* v = next();
      if (v == nullptr) return usage();
      tech_path = v;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr || !apply_jobs(v)) return usage();
    } else if (arg == "--device-eval") {
      const char* v = next();
      if (v == nullptr || !apply_device_eval(v)) return usage();
    } else if (arg == "--tran-mode") {
      const char* v = next();
      if (v == nullptr || !apply_tran_mode(v)) return usage();
    } else if (arg == "--tran-rtol") {
      const char* v = next();
      if (v == nullptr || !apply_tran_tolerance("--tran-rtol", v, true)) {
        return usage();
      }
    } else if (arg == "--tran-atol") {
      const char* v = next();
      if (v == nullptr || !apply_tran_tolerance("--tran-atol", v, false)) {
        return usage();
      }
    } else if (arg == "--no-rules") {
      rules = false;
    } else {
      std::fprintf(stderr, "unknown serve option '%s'\n", arg.c_str());
      return usage();
    }
  }
  if (sv.socket_path.empty()) {
    std::fprintf(stderr, "serve mode requires --socket PATH\n");
    return usage();
  }

  tech::Technology t;
  if (!load_technology(tech_path, &t)) return 1;

  synth::SynthOptions opts;
  opts.rules_enabled = rules;
  stamp_tran_options(&opts);
  sv.worker_command = self_executable(argv0);
  if (sv.worker_command.empty()) {
    std::fprintf(stderr, "serve: cannot determine own executable path\n");
    return 1;
  }

  try {
    serve::Server server(std::move(t), opts, std::move(sv));
    g_serve_server = &server;
    std::signal(SIGTERM, serve_signal_handler);
    std::signal(SIGINT, serve_signal_handler);
    std::printf("oasys serve: %zu workers on %s\n",
                server.options().workers,
                server.options().socket_path.c_str());
    std::fflush(stdout);
    const int rc = server.run();
    g_serve_server = nullptr;
    const serve::ServeStats st = server.stats();
    std::printf(
        "oasys serve: drained in %.3f s (%llu sessions, %llu batches, "
        "%llu shared-cache hits, %llu respawns)\n",
        st.drain_seconds, static_cast<unsigned long long>(st.sessions),
        static_cast<unsigned long long>(st.batches),
        static_cast<unsigned long long>(st.shared_cache_hits),
        static_cast<unsigned long long>(st.respawns));
    return rc;
  } catch (const std::exception& e) {
    g_serve_server = nullptr;
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}

// `oasys stat`: live daemon introspection.  One empty kStatus frame over
// the admin path of the serve socket; the daemon answers before any
// kConfig handshake, so this works against a busy daemon without joining
// the request path.  Human table by default, canonical oasys.status.v1
// JSON with --json.
int run_stat_mode(int argc, char** argv) {
  using namespace oasys;

  std::string socket_path;
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--connect") {
      const char* v = next();
      if (v == nullptr) return usage();
      socket_path = v;
    } else if (arg == "--json") {
      json = true;
    } else {
      std::fprintf(stderr, "unknown stat option '%s'\n", arg.c_str());
      return usage();
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "stat mode requires --connect SOCKET\n");
    return usage();
  }

  try {
    const serve::StatusReport st = serve::fetch_status(socket_path);
    if (json) {
      std::fputs((serve::status_json(st) + "\n").c_str(), stdout);
    } else {
      std::printf("oasys serve at %s\n", socket_path.c_str());
      std::fputs(serve::status_table(st).c_str(), stdout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}

// `oasys yield`: synthesize one spec, then run deterministic Monte-Carlo
// mismatch analysis over the selected design.  Results are a pure
// function of (technology, spec, options, samples, seed) — bit-identical
// at every --jobs setting (pinned by the yield conformance tests).
int run_yield_mode(int argc, char** argv) {
  using namespace oasys;

  std::vector<std::string> operands;
  std::string tech_path;
  std::string metrics_path;
  bool rules = true;
  bool json = false;
  long samples = 200;
  long seed = 1;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--tech") {
      const char* v = next();
      if (v == nullptr) return usage();
      tech_path = v;
    } else if (arg == "--samples") {
      const char* v = next();
      if (v == nullptr || !parse_count(v, 1, &samples)) {
        std::fprintf(stderr, "--samples requires a positive integer\n");
        return usage();
      }
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr || !parse_count(v, 0, &seed)) {
        std::fprintf(stderr, "--seed requires a non-negative integer\n");
        return usage();
      }
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr || !apply_jobs(v)) return usage();
    } else if (arg == "--device-eval") {
      const char* v = next();
      if (v == nullptr || !apply_device_eval(v)) return usage();
    } else if (arg == "--tran-mode") {
      const char* v = next();
      if (v == nullptr || !apply_tran_mode(v)) return usage();
    } else if (arg == "--tran-rtol") {
      const char* v = next();
      if (v == nullptr || !apply_tran_tolerance("--tran-rtol", v, true)) {
        return usage();
      }
    } else if (arg == "--tran-atol") {
      const char* v = next();
      if (v == nullptr || !apply_tran_tolerance("--tran-atol", v, false)) {
        return usage();
      }
    } else if (arg == "--metrics-json") {
      const char* v = next();
      if (v == nullptr) return usage();
      metrics_path = v;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--no-rules") {
      rules = false;
    } else if (util::starts_with(arg, "--")) {
      std::fprintf(stderr, "unknown yield option '%s'\n", arg.c_str());
      return usage();
    } else {
      operands.push_back(arg);
    }
  }
  if (operands.size() != 1) {
    std::fprintf(stderr, "yield mode needs exactly one spec file\n");
    return usage();
  }

  tech::Technology t;
  if (!load_technology(tech_path, &t)) return 1;

  const core::SpecParseResult sr =
      core::load_opamp_spec_file(operands[0]);
  if (!sr.ok()) {
    std::fprintf(stderr, "spec file errors:\n%s",
                 sr.log.to_string().c_str());
    return 1;
  }

  synth::SynthOptions opts;
  opts.rules_enabled = rules;
  stamp_tran_options(&opts);
  yield::YieldParams params;
  params.samples = static_cast<int>(samples);
  params.seed = static_cast<std::uint64_t>(seed);

  const yield::YieldResult r = yield::run_yield(t, sr.spec, params, opts);

  auto done = [&](int code) {
    if (!write_metrics(metrics_path)) return 1;
    return code;
  };

  if (json) {
    std::fputs((yield::yield_result_json(r) + "\n").c_str(), stdout);
    return done(r.ok ? 0 : 1);
  }

  if (!r.ok) {
    std::printf("yield analysis failed: %s\n", r.error.c_str());
    return done(1);
  }
  const synth::OpAmpDesign& best = *r.synthesis.best();
  std::printf("spec %s: style %s, %d samples (seed %llu), %d converged\n",
              r.synthesis.spec.name.c_str(), best.style_name().c_str(),
              r.samples_requested,
              static_cast<unsigned long long>(r.seed),
              r.samples_converged);
  util::Table table({"metric", "bound", "pass", "mean", "sigma", "p05",
                     "p50", "p95"});
  for (const yield::MetricStats& m : r.metrics) {
    table.add_row(
        {m.name,
         m.constrained ? util::format("%.6g", m.bound) : "-",
         m.constrained
             ? util::format("%llu/%d",
                            static_cast<unsigned long long>(m.pass),
                            r.samples_requested)
             : "-",
         util::format("%.6g", m.mean), util::format("%.3g", m.sigma),
         util::format("%.6g", m.p05), util::format("%.6g", m.p50),
         util::format("%.6g", m.p95)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("yield: %.1f%% (%llu/%d samples pass every constrained "
              "metric)\n",
              r.yield * 100.0,
              static_cast<unsigned long long>(r.pass_count),
              r.samples_requested);
  return done(0);
}

// ---- tolerance-pinned golden suite (oasys.tol.v1) --------------------------
//
// `oasys golden --tol` is the regeneration path for tests/golden/tol/:
// each document pins one measurement subject (an op-amp paper case, the
// built-in comparator example, the built-in SAR converter) under the
// adaptive transient, together with the per-metric tolerance envelopes a
// comparison must satisfy.  The envelopes live *in the golden file* so
// the comparator (tests/tolcmp.h) needs no out-of-band configuration and
// tightening a tolerance is a reviewed golden-file diff.

// One metric value plus its acceptance envelope: |cand - golden| must be
// <= abs + rel * |golden|.  abs == rel == 0 pins the value exactly
// (integer and boolean metrics).
struct TolMetric {
  std::string name;
  double value = 0.0;
  double abs = 0.0;
  double rel = 0.0;
};

// %.17g round-trips a double exactly; non-finite values are carried as
// the strings "nan" / "inf" / "-inf" (JSON has no literals for them).
std::string tol_json_number(double v) {
  if (v != v) return "\"nan\"";
  if (v == std::numeric_limits<double>::infinity()) return "\"inf\"";
  if (v == -std::numeric_limits<double>::infinity()) return "\"-inf\"";
  return oasys::util::format("%.17g", v);
}

std::string tol_document(const std::string& subject,
                         const std::string& tech_tag,
                         const std::vector<TolMetric>& metrics) {
  using oasys::util::format;
  const oasys::sim::TranMode mode =
      oasys::sim::resolve_tran_mode(oasys::sim::TranMode::kDefault);
  const oasys::sim::TranTolerance tol =
      oasys::sim::tran_tolerance_default();
  std::string out = "{\n  \"schema\": \"oasys.tol.v1\",\n";
  out += format("  \"subject\": \"%s\",\n", subject.c_str());
  out += format("  \"tech\": \"%s\",\n", tech_tag.c_str());
  out += format("  \"tran\": {\"mode\": \"%s\", \"rtol\": %s, \"atol\": %s},\n",
                oasys::sim::to_string(mode),
                tol_json_number(tol.rtol).c_str(),
                tol_json_number(tol.atol).c_str());
  out += "  \"metrics\": {\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    out += format("    \"%s\": %s%s\n", metrics[i].name.c_str(),
                  tol_json_number(metrics[i].value).c_str(),
                  i + 1 < metrics.size() ? "," : "");
  }
  out += "  },\n  \"tol\": {\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    out += format("    \"%s\": {\"abs\": %s, \"rel\": %s}%s\n",
                  metrics[i].name.c_str(),
                  tol_json_number(metrics[i].abs).c_str(),
                  tol_json_number(metrics[i].rel).c_str(),
                  i + 1 < metrics.size() ? "," : "");
  }
  out += "  }\n}\n";
  return out;
}

// Envelope presets.  Transient-derived metrics (slew, delays) get a
// generous relative band: adaptive stepping is bit-deterministic on one
// build, but the envelopes are what let the suite pass across compilers
// and architectures.  AC/OP-derived metrics barely move and stay tight;
// integer and boolean metrics are exact.
constexpr double kTolTranRel = 2e-2;
constexpr double kTolTranAbs = 1e-12;
constexpr double kTolSmallRel = 1e-6;
constexpr double kTolSmallAbs = 1e-9;

TolMetric tran_metric(const std::string& name, double v) {
  return {name, v, kTolTranAbs, kTolTranRel};
}
TolMetric tight_metric(const std::string& name, double v) {
  return {name, v, kTolSmallAbs, kTolSmallRel};
}
TolMetric exact_metric(const std::string& name, double v) {
  return {name, v, 0.0, 0.0};
}

// The built-in comparator subject: the example spec from
// examples/comparator_design.cpp, which exercises the step-rejection path
// (sharp input edges) of the adaptive integrator.
oasys::synth::ComparatorSpec tol_comparator_spec() {
  oasys::synth::ComparatorSpec spec;
  spec.name = "example";
  spec.resolution = oasys::util::mv(10.0);
  spec.tprop_max = oasys::util::us(2.0);
  spec.cload = oasys::util::pf(2.0);
  spec.out_high = 1.5;
  spec.out_low = -0.5;
  spec.icmr_lo = -1.0;
  spec.icmr_hi = 0.5;
  return spec;
}

// The built-in SAR subject (the nominal converter from the SAR tests).
oasys::synth::SarAdcSpec tol_sar_spec() {
  oasys::synth::SarAdcSpec spec;
  spec.name = "adc8";
  spec.bits = 8;
  spec.sample_rate = oasys::util::khz(20.0);
  spec.vin_lo = -2.0;
  spec.vin_hi = 2.0;
  return spec;
}

// Generates the full tolerance-pinned suite into `out_dir` (or stdout
// when empty).  Subjects: every paper op-amp test case (measured through
// the transient slew testbench), the built-in comparator, the built-in
// SAR converter.  Returns 1 on any synthesis/measurement/write failure.
int run_golden_tol(const oasys::tech::Technology& t,
                   const std::string& tech_tag, const std::string& out_dir,
                   const oasys::synth::SynthOptions& opts) {
  using namespace oasys;

  struct Doc {
    std::string subject;
    std::vector<TolMetric> metrics;
  };
  std::vector<Doc> docs;

  for (const core::OpAmpSpec& spec : synth::paper_test_cases()) {
    const synth::SynthesisResult r = synth::synthesize_opamp(t, spec, opts);
    if (!r.success()) {
      std::fprintf(stderr, "golden --tol: %s: %s\n", spec.name.c_str(),
                   synth::failure_brief(r).c_str());
      return 1;
    }
    // ICMR and noise sweeps do not touch the transient engine and only
    // slow the suite down; slew is the transient-bearing metric.
    synth::MeasureOptions mo;
    mo.measure_icmr = false;
    mo.measure_noise = false;
    const synth::MeasuredOpAmp m = synth::measure_opamp(*r.best(), t, mo);
    if (!m.ok) {
      std::fprintf(stderr, "golden --tol: %s: %s\n", spec.name.c_str(),
                   m.error.c_str());
      return 1;
    }
    docs.push_back(
        {"opamp_" + spec.name,
         {tran_metric("slew", m.perf.slew),
          tight_metric("gain_db", m.perf.gain_db),
          tight_metric("gbw", m.perf.gbw),
          tight_metric("pm_deg", m.perf.pm_deg),
          tight_metric("swing_pos", m.perf.swing_pos),
          tight_metric("swing_neg", m.perf.swing_neg),
          tight_metric("offset", m.perf.offset),
          tight_metric("power", m.perf.power)}});
  }

  {
    const synth::ComparatorSpec spec = tol_comparator_spec();
    const synth::ComparatorDesign d = synth::design_comparator(t, spec, opts);
    if (!d.feasible) {
      std::fprintf(stderr, "golden --tol: comparator %s infeasible\n",
                   spec.name.c_str());
      return 1;
    }
    const synth::MeasuredComparator m = synth::measure_comparator(d, t);
    if (!m.ok) {
      std::fprintf(stderr, "golden --tol: comparator %s: %s\n",
                   spec.name.c_str(), m.error.c_str());
      return 1;
    }
    docs.push_back({"comparator_" + spec.name,
                    {tran_metric("delay_rising", m.delay_rising),
                     tran_metric("delay_falling", m.delay_falling),
                     tight_metric("out_high", m.out_high),
                     tight_metric("out_low", m.out_low),
                     tight_metric("offset", m.offset),
                     tight_metric("power", m.power)}});
  }

  {
    const synth::SarAdcSpec spec = tol_sar_spec();
    const synth::SarAdcDesign d = synth::design_sar_adc(t, spec, opts);
    if (!d.feasible) {
      std::fprintf(stderr, "golden --tol: sar %s infeasible\n",
                   spec.name.c_str());
      return 1;
    }
    const synth::MeasuredSarAdc m = synth::measure_sar_adc(d, t);
    if (!m.ok) {
      std::fprintf(stderr, "golden --tol: sar %s: %s\n", spec.name.c_str(),
                   m.error.c_str());
      return 1;
    }
    docs.push_back(
        {"sar_" + spec.name,
         {exact_metric("max_code_error_lsb",
                       static_cast<double>(m.max_code_error_lsb)),
          exact_metric("monotonic", m.monotonic ? 1.0 : 0.0),
          tran_metric("comparator_tprop", m.comparator_tprop),
          exact_metric("timing_met", m.timing_met ? 1.0 : 0.0)}});
  }

  bool write_failed = false;
  for (const Doc& doc : docs) {
    const std::string json = tol_document(doc.subject, tech_tag, doc.metrics);
    if (out_dir.empty()) {
      std::fputs(json.c_str(), stdout);
      continue;
    }
    const std::string path =
        out_dir + "/tol_" + tech_tag + "_" + doc.subject + ".json";
    std::ofstream out(path);
    if (out) out << json;
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
      write_failed = true;
      continue;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return write_failed ? 1 : 0;
}

// `oasys golden`: canonical result JSON (oasys.result.v1) per spec.  With
// --dir, writes DIR/<tech>_<spec>.json per spec (the regeneration path
// for tests/golden/); otherwise the documents stream to stdout.
int run_golden_mode(int argc, char** argv) {
  using namespace oasys;

  std::vector<std::string> operands;
  std::string tech_path;
  std::string out_dir;
  bool rules = true;
  bool tol = false;
  bool tran_mode_given = false;
  long yield_samples = 0;
  long yield_seed = 1;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--tech") {
      const char* v = next();
      if (v == nullptr) return usage();
      tech_path = v;
    } else if (arg == "--dir") {
      const char* v = next();
      if (v == nullptr) return usage();
      out_dir = v;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr || !apply_jobs(v)) return usage();
    } else if (arg == "--device-eval") {
      const char* v = next();
      if (v == nullptr || !apply_device_eval(v)) return usage();
    } else if (arg == "--tran-mode") {
      const char* v = next();
      if (v == nullptr || !apply_tran_mode(v)) return usage();
      tran_mode_given = true;
    } else if (arg == "--tran-rtol") {
      const char* v = next();
      if (v == nullptr || !apply_tran_tolerance("--tran-rtol", v, true)) {
        return usage();
      }
    } else if (arg == "--tran-atol") {
      const char* v = next();
      if (v == nullptr || !apply_tran_tolerance("--tran-atol", v, false)) {
        return usage();
      }
    } else if (arg == "--tol") {
      tol = true;
    } else if (arg == "--yield-samples") {
      const char* v = next();
      if (v == nullptr || !parse_count(v, 1, &yield_samples)) {
        std::fprintf(stderr,
                     "--yield-samples requires a positive integer\n");
        return usage();
      }
    } else if (arg == "--yield-seed") {
      const char* v = next();
      if (v == nullptr || !parse_count(v, 0, &yield_seed)) {
        std::fprintf(stderr,
                     "--yield-seed requires a non-negative integer\n");
        return usage();
      }
    } else if (arg == "--no-rules") {
      rules = false;
    } else if (util::starts_with(arg, "--")) {
      std::fprintf(stderr, "unknown golden option '%s'\n", arg.c_str());
      return usage();
    } else {
      operands.push_back(arg);
    }
  }
  if (operands.empty() && !tol) {
    std::fprintf(stderr,
                 "golden mode needs at least one spec file or directory\n");
    return usage();
  }

  tech::Technology t;
  if (!load_technology(tech_path, &t)) return 1;
  const std::string tech_tag =
      tech_path.empty()
          ? "builtin"
          : std::filesystem::path(tech_path).stem().string();

  // The tolerance suite exists to pin the adaptive engine; regenerating
  // it under fixed stepping would produce misleading goldens, so --tol
  // selects adaptive unless a mode was given explicitly.
  if (tol && !tran_mode_given) {
    sim::set_tran_mode_default(sim::TranMode::kAdaptive);
  }

  if (tol) {
    synth::SynthOptions opts;
    opts.rules_enabled = rules;
    stamp_tran_options(&opts);
    return run_golden_tol(t, tech_tag, out_dir, opts);
  }

  std::vector<std::string> spec_paths;
  std::vector<core::OpAmpSpec> specs;
  bool parse_failed = false;
  if (!load_specs(operands, &spec_paths, &specs, &parse_failed)) return 1;

  synth::SynthOptions opts;
  opts.rules_enabled = rules;
  stamp_tran_options(&opts);
  bool write_failed = false;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    std::string json;
    if (yield_samples > 0) {
      yield::YieldParams params;
      params.samples = static_cast<int>(yield_samples);
      params.seed = static_cast<std::uint64_t>(yield_seed);
      json = yield::yield_result_json(
                 yield::run_yield(t, specs[i], params, opts)) +
             "\n";
    } else {
      json = synth::result_json(
                 synth::synthesize_opamp(t, specs[i], opts)) +
             "\n";
    }
    if (out_dir.empty()) {
      std::fputs(json.c_str(), stdout);
      continue;
    }
    const std::string name =
        tech_tag + "_" +
        std::filesystem::path(spec_paths[i]).stem().string() +
        (yield_samples > 0 ? "_yield.json" : ".json");
    const std::string path = out_dir + "/" + name;
    std::ofstream out(path);
    if (out) out << json;
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
      write_failed = true;
      continue;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return (parse_failed || write_failed) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oasys;

  if (argc > 1 && std::strcmp(argv[1], "batch") == 0) {
    return run_batch_mode(argc - 2, argv + 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "shard") == 0) {
    return run_shard_mode(argc - 2, argv + 2, argv[0]);
  }
  if (argc > 1 && std::strcmp(argv[1], "shard-worker") == 0) {
    if (argc > 2 && std::strcmp(argv[2], "--session") == 0) {
      return shard::worker_session_main(STDIN_FILENO, STDOUT_FILENO);
    }
    return shard::worker_main(STDIN_FILENO, STDOUT_FILENO);
  }
  if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
    return run_serve_mode(argc - 2, argv + 2, argv[0]);
  }
  if (argc > 1 && std::strcmp(argv[1], "stat") == 0) {
    return run_stat_mode(argc - 2, argv + 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "yield") == 0) {
    return run_yield_mode(argc - 2, argv + 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "golden") == 0) {
    return run_golden_mode(argc - 2, argv + 2);
  }

  std::string spec_path;
  std::string tech_path;
  std::string export_path;
  std::string metrics_path;
  bool verify = false;
  bool trace = false;
  bool rules = true;
  bool templates = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--spec") {
      const char* v = next();
      if (v == nullptr) return usage();
      spec_path = v;
    } else if (arg == "--tech") {
      const char* v = next();
      if (v == nullptr) return usage();
      tech_path = v;
    } else if (arg == "--export") {
      const char* v = next();
      if (v == nullptr) return usage();
      export_path = v;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr || !apply_jobs(v)) return usage();
    } else if (arg == "--device-eval") {
      const char* v = next();
      if (v == nullptr || !apply_device_eval(v)) return usage();
    } else if (arg == "--tran-mode") {
      const char* v = next();
      if (v == nullptr || !apply_tran_mode(v)) return usage();
    } else if (arg == "--tran-rtol") {
      const char* v = next();
      if (v == nullptr || !apply_tran_tolerance("--tran-rtol", v, true)) {
        return usage();
      }
    } else if (arg == "--tran-atol") {
      const char* v = next();
      if (v == nullptr || !apply_tran_tolerance("--tran-atol", v, false)) {
        return usage();
      }
    } else if (arg == "--metrics-json") {
      const char* v = next();
      if (v == nullptr) return usage();
      metrics_path = v;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--no-rules") {
      rules = false;
    } else if (arg == "--templates") {
      templates = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage();
    }
  }

  if (templates) {
    for (const auto& spec : synth::paper_test_cases()) {
      std::printf("# ---- paper test case %s ----\n%s\n",
                  spec.name.c_str(), core::to_spec_text(spec).c_str());
    }
    return 0;
  }
  if (spec_path.empty()) return usage();

  tech::Technology t;
  if (!load_technology(tech_path, &t)) return 1;

  const core::SpecParseResult sr = core::load_opamp_spec_file(spec_path);
  if (!sr.ok()) {
    std::fprintf(stderr, "spec file errors:\n%s",
                 sr.log.to_string().c_str());
    return 1;
  }

  synth::SynthOptions opts;
  opts.rules_enabled = rules;
  stamp_tran_options(&opts);
  // --trace turns on the process-wide span collector: the plan narrative
  // and the span timeline below are two renderings of one event stream.
  if (trace) obs::set_tracing_enabled(true);
  const synth::SynthesisResult result =
      synth::synthesize_opamp(t, sr.spec, opts);

  if (trace) {
    std::fputs(synth::synthesis_report(result).c_str(), stdout);
    std::puts("\nspan timeline:");
    std::fputs(obs::trace_text(obs::drain_global_trace()).c_str(), stdout);
  } else {
    std::fputs(sr.spec.to_string().c_str(), stdout);
    std::puts("style selection:");
    std::fputs(result.selection.summary.c_str(), stdout);
    if (result.success()) {
      std::fputs(synth::design_summary(*result.best()).c_str(), stdout);
      std::fputs(synth::device_table(*result.best()).c_str(), stdout);
    }
  }
  // Every post-synthesis exit writes the metrics registry (a failed run's
  // counters are exactly what a failure investigation wants to see).
  auto done = [&](int code) {
    if (!write_metrics(metrics_path)) return 1;
    return code;
  };

  // Scriptability contract: "no feasible style" must be distinguishable
  // from success without scraping stdout (pinned by ctest).
  if (!result.success()) {
    std::puts("no feasible design.");
    return done(1);
  }

  const synth::OpAmpDesign& best = *result.best();
  if (verify) {
    const synth::MeasuredOpAmp m = synth::measure_opamp(best, t);
    if (!m.ok) {
      std::fprintf(stderr, "verification failed: %s\n", m.error.c_str());
      return done(1);
    }
    std::puts("\nspec vs predicted vs simulated:");
    std::fputs(synth::comparison_table(best, &m).c_str(), stdout);
  }
  if (!export_path.empty()) {
    ckt::SpiceWriterOptions wo;
    wo.title = "oasys synthesized op amp (" + best.style_name() + ")";
    std::ofstream out(export_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", export_path.c_str());
      return done(1);
    }
    out << ckt::to_spice_deck(synth::build_standalone_opamp(best, t), t,
                              wo);
    std::printf("\nSPICE deck written to %s\n", export_path.c_str());
  }
  return done(0);
}
