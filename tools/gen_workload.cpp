// oasys_gen_workload — deterministic synthetic workload generator for
// exercising the serving stack with mixed synthesis/yield traffic.
//
// Usage:
//   oasys_gen_workload --dir DIR [--count N] [--seed S]
//                      [--yield-ratio R] [--yield-samples K]
//
// Emits N spec files (DIR/w000.spec ...) derived from the paper's test
// cases with bounded deterministic jitter, plus a manifest DIR/workload.tsv
// with one request per line:
//
//   synth  <spec-file>
//   yield  <spec-file>  <samples>  <seed>
//
// Roughly R of the requests are yield requests (the per-request decision
// is a deterministic draw, so two runs with the same arguments emit
// byte-identical files).  All randomness comes from util::RngStream
// (seed, request index) — the same counter-based streams the yield
// subsystem itself draws from — so workloads are reproducible across
// machines and runs by construction.
//
// Exit codes: 0 success, 1 cannot write output, 2 usage error.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/spec_parser.h"
#include "synth/test_cases.h"
#include "util/rng.h"
#include "util/text.h"

namespace {

int usage() {
  std::puts(
      "usage: oasys_gen_workload --dir DIR [--count N] [--seed S]\n"
      "                          [--yield-ratio R] [--yield-samples K]\n"
      "  --dir DIR        output directory (created if missing)\n"
      "  --count N        requests to generate (default 16)\n"
      "  --seed S         generator seed (default 1)\n"
      "  --yield-ratio R  fraction of requests that are yield analyses,\n"
      "                   in [0, 1] (default 0.5)\n"
      "  --yield-samples K  mismatch samples per yield request "
      "(default 32)\n");
  return 2;
}

bool parse_long(const char* v, long min_value, long* out) {
  char* end = nullptr;
  errno = 0;
  const long n = std::strtol(v, &end, 10);
  if (errno == ERANGE || end == v || *end != '\0' || n < min_value) {
    return false;
  }
  *out = n;
  return true;
}

bool parse_ratio(const char* v, double* out) {
  char* end = nullptr;
  errno = 0;
  const double r = std::strtod(v, &end);
  if (errno == ERANGE || end == v || *end != '\0' || !(r >= 0.0) ||
      r > 1.0) {
    return false;
  }
  *out = r;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oasys;

  std::string dir;
  long count = 16;
  long seed = 1;
  long yield_samples = 32;
  double yield_ratio = 0.5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--dir") {
      const char* v = next();
      if (v == nullptr) return usage();
      dir = v;
    } else if (arg == "--count") {
      const char* v = next();
      if (v == nullptr || !parse_long(v, 1, &count)) {
        std::fprintf(stderr, "--count requires a positive integer\n");
        return usage();
      }
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr || !parse_long(v, 0, &seed)) {
        std::fprintf(stderr, "--seed requires a non-negative integer\n");
        return usage();
      }
    } else if (arg == "--yield-ratio") {
      const char* v = next();
      if (v == nullptr || !parse_ratio(v, &yield_ratio)) {
        std::fprintf(stderr, "--yield-ratio requires a number in [0, 1]\n");
        return usage();
      }
    } else if (arg == "--yield-samples") {
      const char* v = next();
      if (v == nullptr || !parse_long(v, 1, &yield_samples)) {
        std::fprintf(stderr,
                     "--yield-samples requires a positive integer\n");
        return usage();
      }
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage();
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr, "--dir is required\n");
    return usage();
  }

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);

  const std::vector<core::OpAmpSpec> bases = synth::paper_test_cases();
  std::string manifest;
  for (long i = 0; i < count; ++i) {
    // One stream per request: draws never depend on other requests, so
    // regenerating a prefix of the workload reproduces it exactly.
    util::RngStream rng(static_cast<std::uint64_t>(seed),
                        static_cast<std::uint64_t>(i));
    core::OpAmpSpec spec =
        bases[static_cast<std::size_t>(rng.next_u64() %
                                       bases.size())];
    // Bounded jitter keeps the spec in the base case's feasible
    // neighbourhood while making every request a distinct cache key.
    const auto jitter = [&rng](double lo, double hi) {
      return lo + (hi - lo) * rng.next_double();
    };
    spec.name = util::format("%s_w%03ld", spec.name.c_str(), i);
    if (spec.gain_min_db > 0.0) spec.gain_min_db += jitter(-2.0, 2.0);
    if (spec.gbw_min > 0.0) spec.gbw_min *= jitter(0.85, 1.1);
    if (spec.slew_min > 0.0) spec.slew_min *= jitter(0.85, 1.1);
    if (spec.cload > 0.0) spec.cload *= jitter(0.9, 1.1);
    const bool is_yield = rng.next_double() < yield_ratio;

    const std::string spec_name = util::format("w%03ld.spec", i);
    const std::string spec_path = dir + "/" + spec_name;
    std::ofstream out(spec_path);
    if (out) out << core::to_spec_text(spec);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", spec_path.c_str());
      return 1;
    }
    if (is_yield) {
      manifest += util::format("yield\t%s\t%ld\t%ld\n", spec_name.c_str(),
                               yield_samples, seed);
    } else {
      manifest += util::format("synth\t%s\n", spec_name.c_str());
    }
  }

  const std::string manifest_path = dir + "/workload.tsv";
  std::ofstream out(manifest_path);
  if (out) out << manifest;
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", manifest_path.c_str());
    return 1;
  }
  std::printf("wrote %ld specs and %s\n", count, manifest_path.c_str());
  return 0;
}
