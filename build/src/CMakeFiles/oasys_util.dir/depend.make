# Empty dependencies file for oasys_util.
# This may be replaced when dependencies are built.
