file(REMOVE_RECURSE
  "CMakeFiles/oasys_util.dir/util/diagnostics.cpp.o"
  "CMakeFiles/oasys_util.dir/util/diagnostics.cpp.o.d"
  "CMakeFiles/oasys_util.dir/util/table.cpp.o"
  "CMakeFiles/oasys_util.dir/util/table.cpp.o.d"
  "CMakeFiles/oasys_util.dir/util/text.cpp.o"
  "CMakeFiles/oasys_util.dir/util/text.cpp.o.d"
  "liboasys_util.a"
  "liboasys_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasys_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
