file(REMOVE_RECURSE
  "liboasys_util.a"
)
