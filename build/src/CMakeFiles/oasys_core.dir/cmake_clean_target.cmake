file(REMOVE_RECURSE
  "liboasys_core.a"
)
