# Empty compiler generated dependencies file for oasys_core.
# This may be replaced when dependencies are built.
