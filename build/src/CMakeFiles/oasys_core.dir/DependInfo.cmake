
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/context.cpp" "src/CMakeFiles/oasys_core.dir/core/context.cpp.o" "gcc" "src/CMakeFiles/oasys_core.dir/core/context.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/CMakeFiles/oasys_core.dir/core/plan.cpp.o" "gcc" "src/CMakeFiles/oasys_core.dir/core/plan.cpp.o.d"
  "/root/repo/src/core/selector.cpp" "src/CMakeFiles/oasys_core.dir/core/selector.cpp.o" "gcc" "src/CMakeFiles/oasys_core.dir/core/selector.cpp.o.d"
  "/root/repo/src/core/spec.cpp" "src/CMakeFiles/oasys_core.dir/core/spec.cpp.o" "gcc" "src/CMakeFiles/oasys_core.dir/core/spec.cpp.o.d"
  "/root/repo/src/core/spec_parser.cpp" "src/CMakeFiles/oasys_core.dir/core/spec_parser.cpp.o" "gcc" "src/CMakeFiles/oasys_core.dir/core/spec_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oasys_mos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
