file(REMOVE_RECURSE
  "CMakeFiles/oasys_core.dir/core/context.cpp.o"
  "CMakeFiles/oasys_core.dir/core/context.cpp.o.d"
  "CMakeFiles/oasys_core.dir/core/plan.cpp.o"
  "CMakeFiles/oasys_core.dir/core/plan.cpp.o.d"
  "CMakeFiles/oasys_core.dir/core/selector.cpp.o"
  "CMakeFiles/oasys_core.dir/core/selector.cpp.o.d"
  "CMakeFiles/oasys_core.dir/core/spec.cpp.o"
  "CMakeFiles/oasys_core.dir/core/spec.cpp.o.d"
  "CMakeFiles/oasys_core.dir/core/spec_parser.cpp.o"
  "CMakeFiles/oasys_core.dir/core/spec_parser.cpp.o.d"
  "liboasys_core.a"
  "liboasys_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasys_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
