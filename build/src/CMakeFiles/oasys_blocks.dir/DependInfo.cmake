
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blocks/bias_chain.cpp" "src/CMakeFiles/oasys_blocks.dir/blocks/bias_chain.cpp.o" "gcc" "src/CMakeFiles/oasys_blocks.dir/blocks/bias_chain.cpp.o.d"
  "/root/repo/src/blocks/block_common.cpp" "src/CMakeFiles/oasys_blocks.dir/blocks/block_common.cpp.o" "gcc" "src/CMakeFiles/oasys_blocks.dir/blocks/block_common.cpp.o.d"
  "/root/repo/src/blocks/current_mirror.cpp" "src/CMakeFiles/oasys_blocks.dir/blocks/current_mirror.cpp.o" "gcc" "src/CMakeFiles/oasys_blocks.dir/blocks/current_mirror.cpp.o.d"
  "/root/repo/src/blocks/diff_pair.cpp" "src/CMakeFiles/oasys_blocks.dir/blocks/diff_pair.cpp.o" "gcc" "src/CMakeFiles/oasys_blocks.dir/blocks/diff_pair.cpp.o.d"
  "/root/repo/src/blocks/gm_stage.cpp" "src/CMakeFiles/oasys_blocks.dir/blocks/gm_stage.cpp.o" "gcc" "src/CMakeFiles/oasys_blocks.dir/blocks/gm_stage.cpp.o.d"
  "/root/repo/src/blocks/level_shifter.cpp" "src/CMakeFiles/oasys_blocks.dir/blocks/level_shifter.cpp.o" "gcc" "src/CMakeFiles/oasys_blocks.dir/blocks/level_shifter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oasys_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_mos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
