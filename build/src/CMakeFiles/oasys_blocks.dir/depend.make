# Empty dependencies file for oasys_blocks.
# This may be replaced when dependencies are built.
