file(REMOVE_RECURSE
  "liboasys_blocks.a"
)
