file(REMOVE_RECURSE
  "CMakeFiles/oasys_blocks.dir/blocks/bias_chain.cpp.o"
  "CMakeFiles/oasys_blocks.dir/blocks/bias_chain.cpp.o.d"
  "CMakeFiles/oasys_blocks.dir/blocks/block_common.cpp.o"
  "CMakeFiles/oasys_blocks.dir/blocks/block_common.cpp.o.d"
  "CMakeFiles/oasys_blocks.dir/blocks/current_mirror.cpp.o"
  "CMakeFiles/oasys_blocks.dir/blocks/current_mirror.cpp.o.d"
  "CMakeFiles/oasys_blocks.dir/blocks/diff_pair.cpp.o"
  "CMakeFiles/oasys_blocks.dir/blocks/diff_pair.cpp.o.d"
  "CMakeFiles/oasys_blocks.dir/blocks/gm_stage.cpp.o"
  "CMakeFiles/oasys_blocks.dir/blocks/gm_stage.cpp.o.d"
  "CMakeFiles/oasys_blocks.dir/blocks/level_shifter.cpp.o"
  "CMakeFiles/oasys_blocks.dir/blocks/level_shifter.cpp.o.d"
  "liboasys_blocks.a"
  "liboasys_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasys_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
