# Empty dependencies file for oasys_mos.
# This may be replaced when dependencies are built.
