file(REMOVE_RECURSE
  "CMakeFiles/oasys_mos.dir/mos/design_eqs.cpp.o"
  "CMakeFiles/oasys_mos.dir/mos/design_eqs.cpp.o.d"
  "CMakeFiles/oasys_mos.dir/mos/level1.cpp.o"
  "CMakeFiles/oasys_mos.dir/mos/level1.cpp.o.d"
  "liboasys_mos.a"
  "liboasys_mos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasys_mos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
