file(REMOVE_RECURSE
  "liboasys_mos.a"
)
