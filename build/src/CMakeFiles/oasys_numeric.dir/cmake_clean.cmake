file(REMOVE_RECURSE
  "CMakeFiles/oasys_numeric.dir/numeric/interpolate.cpp.o"
  "CMakeFiles/oasys_numeric.dir/numeric/interpolate.cpp.o.d"
  "CMakeFiles/oasys_numeric.dir/numeric/linear.cpp.o"
  "CMakeFiles/oasys_numeric.dir/numeric/linear.cpp.o.d"
  "CMakeFiles/oasys_numeric.dir/numeric/rootfind.cpp.o"
  "CMakeFiles/oasys_numeric.dir/numeric/rootfind.cpp.o.d"
  "liboasys_numeric.a"
  "liboasys_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasys_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
