file(REMOVE_RECURSE
  "liboasys_numeric.a"
)
