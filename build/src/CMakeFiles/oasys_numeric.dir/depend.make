# Empty dependencies file for oasys_numeric.
# This may be replaced when dependencies are built.
