# Empty dependencies file for oasys_baseline.
# This may be replaced when dependencies are built.
