file(REMOVE_RECURSE
  "CMakeFiles/oasys_baseline.dir/baseline/random_sizer.cpp.o"
  "CMakeFiles/oasys_baseline.dir/baseline/random_sizer.cpp.o.d"
  "liboasys_baseline.a"
  "liboasys_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasys_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
