file(REMOVE_RECURSE
  "liboasys_baseline.a"
)
