file(REMOVE_RECURSE
  "liboasys_tech.a"
)
