# Empty dependencies file for oasys_tech.
# This may be replaced when dependencies are built.
