file(REMOVE_RECURSE
  "CMakeFiles/oasys_tech.dir/tech/builtin.cpp.o"
  "CMakeFiles/oasys_tech.dir/tech/builtin.cpp.o.d"
  "CMakeFiles/oasys_tech.dir/tech/tech_parser.cpp.o"
  "CMakeFiles/oasys_tech.dir/tech/tech_parser.cpp.o.d"
  "CMakeFiles/oasys_tech.dir/tech/technology.cpp.o"
  "CMakeFiles/oasys_tech.dir/tech/technology.cpp.o.d"
  "liboasys_tech.a"
  "liboasys_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasys_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
