file(REMOVE_RECURSE
  "CMakeFiles/oasys_netlist.dir/netlist/circuit.cpp.o"
  "CMakeFiles/oasys_netlist.dir/netlist/circuit.cpp.o.d"
  "CMakeFiles/oasys_netlist.dir/netlist/spice_writer.cpp.o"
  "CMakeFiles/oasys_netlist.dir/netlist/spice_writer.cpp.o.d"
  "CMakeFiles/oasys_netlist.dir/netlist/waveform.cpp.o"
  "CMakeFiles/oasys_netlist.dir/netlist/waveform.cpp.o.d"
  "liboasys_netlist.a"
  "liboasys_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasys_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
