file(REMOVE_RECURSE
  "liboasys_netlist.a"
)
