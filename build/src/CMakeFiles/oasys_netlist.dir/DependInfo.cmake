
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/circuit.cpp" "src/CMakeFiles/oasys_netlist.dir/netlist/circuit.cpp.o" "gcc" "src/CMakeFiles/oasys_netlist.dir/netlist/circuit.cpp.o.d"
  "/root/repo/src/netlist/spice_writer.cpp" "src/CMakeFiles/oasys_netlist.dir/netlist/spice_writer.cpp.o" "gcc" "src/CMakeFiles/oasys_netlist.dir/netlist/spice_writer.cpp.o.d"
  "/root/repo/src/netlist/waveform.cpp" "src/CMakeFiles/oasys_netlist.dir/netlist/waveform.cpp.o" "gcc" "src/CMakeFiles/oasys_netlist.dir/netlist/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oasys_mos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
