# Empty compiler generated dependencies file for oasys_netlist.
# This may be replaced when dependencies are built.
