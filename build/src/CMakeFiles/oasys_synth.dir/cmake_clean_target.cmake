file(REMOVE_RECURSE
  "liboasys_synth.a"
)
