file(REMOVE_RECURSE
  "CMakeFiles/oasys_synth.dir/synth/comparator.cpp.o"
  "CMakeFiles/oasys_synth.dir/synth/comparator.cpp.o.d"
  "CMakeFiles/oasys_synth.dir/synth/fd_ota.cpp.o"
  "CMakeFiles/oasys_synth.dir/synth/fd_ota.cpp.o.d"
  "CMakeFiles/oasys_synth.dir/synth/folded_cascode_designer.cpp.o"
  "CMakeFiles/oasys_synth.dir/synth/folded_cascode_designer.cpp.o.d"
  "CMakeFiles/oasys_synth.dir/synth/mismatch.cpp.o"
  "CMakeFiles/oasys_synth.dir/synth/mismatch.cpp.o.d"
  "CMakeFiles/oasys_synth.dir/synth/netlist_builder.cpp.o"
  "CMakeFiles/oasys_synth.dir/synth/netlist_builder.cpp.o.d"
  "CMakeFiles/oasys_synth.dir/synth/oasys.cpp.o"
  "CMakeFiles/oasys_synth.dir/synth/oasys.cpp.o.d"
  "CMakeFiles/oasys_synth.dir/synth/opamp_design.cpp.o"
  "CMakeFiles/oasys_synth.dir/synth/opamp_design.cpp.o.d"
  "CMakeFiles/oasys_synth.dir/synth/ota_designer.cpp.o"
  "CMakeFiles/oasys_synth.dir/synth/ota_designer.cpp.o.d"
  "CMakeFiles/oasys_synth.dir/synth/report.cpp.o"
  "CMakeFiles/oasys_synth.dir/synth/report.cpp.o.d"
  "CMakeFiles/oasys_synth.dir/synth/sar_adc.cpp.o"
  "CMakeFiles/oasys_synth.dir/synth/sar_adc.cpp.o.d"
  "CMakeFiles/oasys_synth.dir/synth/test_cases.cpp.o"
  "CMakeFiles/oasys_synth.dir/synth/test_cases.cpp.o.d"
  "CMakeFiles/oasys_synth.dir/synth/testbench.cpp.o"
  "CMakeFiles/oasys_synth.dir/synth/testbench.cpp.o.d"
  "CMakeFiles/oasys_synth.dir/synth/two_stage_designer.cpp.o"
  "CMakeFiles/oasys_synth.dir/synth/two_stage_designer.cpp.o.d"
  "liboasys_synth.a"
  "liboasys_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasys_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
