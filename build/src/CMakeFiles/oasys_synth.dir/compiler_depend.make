# Empty compiler generated dependencies file for oasys_synth.
# This may be replaced when dependencies are built.
