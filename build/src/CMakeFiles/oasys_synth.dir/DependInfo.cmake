
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/comparator.cpp" "src/CMakeFiles/oasys_synth.dir/synth/comparator.cpp.o" "gcc" "src/CMakeFiles/oasys_synth.dir/synth/comparator.cpp.o.d"
  "/root/repo/src/synth/fd_ota.cpp" "src/CMakeFiles/oasys_synth.dir/synth/fd_ota.cpp.o" "gcc" "src/CMakeFiles/oasys_synth.dir/synth/fd_ota.cpp.o.d"
  "/root/repo/src/synth/folded_cascode_designer.cpp" "src/CMakeFiles/oasys_synth.dir/synth/folded_cascode_designer.cpp.o" "gcc" "src/CMakeFiles/oasys_synth.dir/synth/folded_cascode_designer.cpp.o.d"
  "/root/repo/src/synth/mismatch.cpp" "src/CMakeFiles/oasys_synth.dir/synth/mismatch.cpp.o" "gcc" "src/CMakeFiles/oasys_synth.dir/synth/mismatch.cpp.o.d"
  "/root/repo/src/synth/netlist_builder.cpp" "src/CMakeFiles/oasys_synth.dir/synth/netlist_builder.cpp.o" "gcc" "src/CMakeFiles/oasys_synth.dir/synth/netlist_builder.cpp.o.d"
  "/root/repo/src/synth/oasys.cpp" "src/CMakeFiles/oasys_synth.dir/synth/oasys.cpp.o" "gcc" "src/CMakeFiles/oasys_synth.dir/synth/oasys.cpp.o.d"
  "/root/repo/src/synth/opamp_design.cpp" "src/CMakeFiles/oasys_synth.dir/synth/opamp_design.cpp.o" "gcc" "src/CMakeFiles/oasys_synth.dir/synth/opamp_design.cpp.o.d"
  "/root/repo/src/synth/ota_designer.cpp" "src/CMakeFiles/oasys_synth.dir/synth/ota_designer.cpp.o" "gcc" "src/CMakeFiles/oasys_synth.dir/synth/ota_designer.cpp.o.d"
  "/root/repo/src/synth/report.cpp" "src/CMakeFiles/oasys_synth.dir/synth/report.cpp.o" "gcc" "src/CMakeFiles/oasys_synth.dir/synth/report.cpp.o.d"
  "/root/repo/src/synth/sar_adc.cpp" "src/CMakeFiles/oasys_synth.dir/synth/sar_adc.cpp.o" "gcc" "src/CMakeFiles/oasys_synth.dir/synth/sar_adc.cpp.o.d"
  "/root/repo/src/synth/test_cases.cpp" "src/CMakeFiles/oasys_synth.dir/synth/test_cases.cpp.o" "gcc" "src/CMakeFiles/oasys_synth.dir/synth/test_cases.cpp.o.d"
  "/root/repo/src/synth/testbench.cpp" "src/CMakeFiles/oasys_synth.dir/synth/testbench.cpp.o" "gcc" "src/CMakeFiles/oasys_synth.dir/synth/testbench.cpp.o.d"
  "/root/repo/src/synth/two_stage_designer.cpp" "src/CMakeFiles/oasys_synth.dir/synth/two_stage_designer.cpp.o" "gcc" "src/CMakeFiles/oasys_synth.dir/synth/two_stage_designer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oasys_blocks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_mos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
