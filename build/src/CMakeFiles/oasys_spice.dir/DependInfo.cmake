
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/ac.cpp" "src/CMakeFiles/oasys_spice.dir/spice/ac.cpp.o" "gcc" "src/CMakeFiles/oasys_spice.dir/spice/ac.cpp.o.d"
  "/root/repo/src/spice/dc.cpp" "src/CMakeFiles/oasys_spice.dir/spice/dc.cpp.o" "gcc" "src/CMakeFiles/oasys_spice.dir/spice/dc.cpp.o.d"
  "/root/repo/src/spice/measure.cpp" "src/CMakeFiles/oasys_spice.dir/spice/measure.cpp.o" "gcc" "src/CMakeFiles/oasys_spice.dir/spice/measure.cpp.o.d"
  "/root/repo/src/spice/mna.cpp" "src/CMakeFiles/oasys_spice.dir/spice/mna.cpp.o" "gcc" "src/CMakeFiles/oasys_spice.dir/spice/mna.cpp.o.d"
  "/root/repo/src/spice/noise.cpp" "src/CMakeFiles/oasys_spice.dir/spice/noise.cpp.o" "gcc" "src/CMakeFiles/oasys_spice.dir/spice/noise.cpp.o.d"
  "/root/repo/src/spice/sweep.cpp" "src/CMakeFiles/oasys_spice.dir/spice/sweep.cpp.o" "gcc" "src/CMakeFiles/oasys_spice.dir/spice/sweep.cpp.o.d"
  "/root/repo/src/spice/tran.cpp" "src/CMakeFiles/oasys_spice.dir/spice/tran.cpp.o" "gcc" "src/CMakeFiles/oasys_spice.dir/spice/tran.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oasys_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_mos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
