file(REMOVE_RECURSE
  "CMakeFiles/oasys_spice.dir/spice/ac.cpp.o"
  "CMakeFiles/oasys_spice.dir/spice/ac.cpp.o.d"
  "CMakeFiles/oasys_spice.dir/spice/dc.cpp.o"
  "CMakeFiles/oasys_spice.dir/spice/dc.cpp.o.d"
  "CMakeFiles/oasys_spice.dir/spice/measure.cpp.o"
  "CMakeFiles/oasys_spice.dir/spice/measure.cpp.o.d"
  "CMakeFiles/oasys_spice.dir/spice/mna.cpp.o"
  "CMakeFiles/oasys_spice.dir/spice/mna.cpp.o.d"
  "CMakeFiles/oasys_spice.dir/spice/noise.cpp.o"
  "CMakeFiles/oasys_spice.dir/spice/noise.cpp.o.d"
  "CMakeFiles/oasys_spice.dir/spice/sweep.cpp.o"
  "CMakeFiles/oasys_spice.dir/spice/sweep.cpp.o.d"
  "CMakeFiles/oasys_spice.dir/spice/tran.cpp.o"
  "CMakeFiles/oasys_spice.dir/spice/tran.cpp.o.d"
  "liboasys_spice.a"
  "liboasys_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasys_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
