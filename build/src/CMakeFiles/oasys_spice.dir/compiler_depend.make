# Empty compiler generated dependencies file for oasys_spice.
# This may be replaced when dependencies are built.
