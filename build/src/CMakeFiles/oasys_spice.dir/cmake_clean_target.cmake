file(REMOVE_RECURSE
  "liboasys_spice.a"
)
