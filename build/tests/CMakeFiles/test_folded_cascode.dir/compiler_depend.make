# Empty compiler generated dependencies file for test_folded_cascode.
# This may be replaced when dependencies are built.
