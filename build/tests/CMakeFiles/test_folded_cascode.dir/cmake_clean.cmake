file(REMOVE_RECURSE
  "CMakeFiles/test_folded_cascode.dir/test_folded_cascode.cpp.o"
  "CMakeFiles/test_folded_cascode.dir/test_folded_cascode.cpp.o.d"
  "test_folded_cascode"
  "test_folded_cascode.pdb"
  "test_folded_cascode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_folded_cascode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
