
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sar_adc.cpp" "tests/CMakeFiles/test_sar_adc.dir/test_sar_adc.cpp.o" "gcc" "tests/CMakeFiles/test_sar_adc.dir/test_sar_adc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oasys_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_blocks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_mos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/oasys_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
