file(REMOVE_RECURSE
  "CMakeFiles/test_spice_tran.dir/test_spice_tran.cpp.o"
  "CMakeFiles/test_spice_tran.dir/test_spice_tran.cpp.o.d"
  "test_spice_tran"
  "test_spice_tran.pdb"
  "test_spice_tran[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice_tran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
