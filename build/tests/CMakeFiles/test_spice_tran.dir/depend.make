# Empty dependencies file for test_spice_tran.
# This may be replaced when dependencies are built.
