# Empty dependencies file for test_blocks_sim.
# This may be replaced when dependencies are built.
