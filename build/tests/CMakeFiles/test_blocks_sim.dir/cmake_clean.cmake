file(REMOVE_RECURSE
  "CMakeFiles/test_blocks_sim.dir/test_blocks_sim.cpp.o"
  "CMakeFiles/test_blocks_sim.dir/test_blocks_sim.cpp.o.d"
  "test_blocks_sim"
  "test_blocks_sim.pdb"
  "test_blocks_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blocks_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
