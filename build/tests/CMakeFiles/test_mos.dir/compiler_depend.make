# Empty compiler generated dependencies file for test_mos.
# This may be replaced when dependencies are built.
