file(REMOVE_RECURSE
  "CMakeFiles/test_mos.dir/test_mos.cpp.o"
  "CMakeFiles/test_mos.dir/test_mos.cpp.o.d"
  "test_mos"
  "test_mos.pdb"
  "test_mos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
