# Empty compiler generated dependencies file for test_spice_ac.
# This may be replaced when dependencies are built.
