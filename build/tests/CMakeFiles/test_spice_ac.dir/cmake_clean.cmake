file(REMOVE_RECURSE
  "CMakeFiles/test_spice_ac.dir/test_spice_ac.cpp.o"
  "CMakeFiles/test_spice_ac.dir/test_spice_ac.cpp.o.d"
  "test_spice_ac"
  "test_spice_ac.pdb"
  "test_spice_ac[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice_ac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
