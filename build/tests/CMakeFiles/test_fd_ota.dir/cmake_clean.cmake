file(REMOVE_RECURSE
  "CMakeFiles/test_fd_ota.dir/test_fd_ota.cpp.o"
  "CMakeFiles/test_fd_ota.dir/test_fd_ota.cpp.o.d"
  "test_fd_ota"
  "test_fd_ota.pdb"
  "test_fd_ota[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fd_ota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
