# Empty compiler generated dependencies file for test_fd_ota.
# This may be replaced when dependencies are built.
