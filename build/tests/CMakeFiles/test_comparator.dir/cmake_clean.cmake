file(REMOVE_RECURSE
  "CMakeFiles/test_comparator.dir/test_comparator.cpp.o"
  "CMakeFiles/test_comparator.dir/test_comparator.cpp.o.d"
  "test_comparator"
  "test_comparator.pdb"
  "test_comparator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comparator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
