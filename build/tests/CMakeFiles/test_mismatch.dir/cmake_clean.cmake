file(REMOVE_RECURSE
  "CMakeFiles/test_mismatch.dir/test_mismatch.cpp.o"
  "CMakeFiles/test_mismatch.dir/test_mismatch.cpp.o.d"
  "test_mismatch"
  "test_mismatch.pdb"
  "test_mismatch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mismatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
