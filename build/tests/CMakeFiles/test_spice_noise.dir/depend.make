# Empty dependencies file for test_spice_noise.
# This may be replaced when dependencies are built.
