file(REMOVE_RECURSE
  "CMakeFiles/test_spice_noise.dir/test_spice_noise.cpp.o"
  "CMakeFiles/test_spice_noise.dir/test_spice_noise.cpp.o.d"
  "test_spice_noise"
  "test_spice_noise.pdb"
  "test_spice_noise[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
