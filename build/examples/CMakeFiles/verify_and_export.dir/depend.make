# Empty dependencies file for verify_and_export.
# This may be replaced when dependencies are built.
