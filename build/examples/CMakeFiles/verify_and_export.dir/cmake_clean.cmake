file(REMOVE_RECURSE
  "CMakeFiles/verify_and_export.dir/verify_and_export.cpp.o"
  "CMakeFiles/verify_and_export.dir/verify_and_export.cpp.o.d"
  "verify_and_export"
  "verify_and_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_and_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
