# Empty compiler generated dependencies file for sar_adc_synthesis.
# This may be replaced when dependencies are built.
