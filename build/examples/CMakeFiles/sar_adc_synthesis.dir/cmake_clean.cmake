file(REMOVE_RECURSE
  "CMakeFiles/sar_adc_synthesis.dir/sar_adc_synthesis.cpp.o"
  "CMakeFiles/sar_adc_synthesis.dir/sar_adc_synthesis.cpp.o.d"
  "sar_adc_synthesis"
  "sar_adc_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sar_adc_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
