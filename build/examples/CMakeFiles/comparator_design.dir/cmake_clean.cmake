file(REMOVE_RECURSE
  "CMakeFiles/comparator_design.dir/comparator_design.cpp.o"
  "CMakeFiles/comparator_design.dir/comparator_design.cpp.o.d"
  "comparator_design"
  "comparator_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparator_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
