# Empty compiler generated dependencies file for comparator_design.
# This may be replaced when dependencies are built.
