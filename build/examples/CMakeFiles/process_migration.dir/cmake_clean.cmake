file(REMOVE_RECURSE
  "CMakeFiles/process_migration.dir/process_migration.cpp.o"
  "CMakeFiles/process_migration.dir/process_migration.cpp.o.d"
  "process_migration"
  "process_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
