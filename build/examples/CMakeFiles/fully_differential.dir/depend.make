# Empty dependencies file for fully_differential.
# This may be replaced when dependencies are built.
