file(REMOVE_RECURSE
  "CMakeFiles/fully_differential.dir/fully_differential.cpp.o"
  "CMakeFiles/fully_differential.dir/fully_differential.cpp.o.d"
  "fully_differential"
  "fully_differential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fully_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
