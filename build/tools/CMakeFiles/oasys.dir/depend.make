# Empty dependencies file for oasys.
# This may be replaced when dependencies are built.
