file(REMOVE_RECURSE
  "CMakeFiles/oasys.dir/oasys_cli.cpp.o"
  "CMakeFiles/oasys.dir/oasys_cli.cpp.o.d"
  "oasys"
  "oasys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
