# Empty dependencies file for bench_synth_perf.
# This may be replaced when dependencies are built.
