file(REMOVE_RECURSE
  "CMakeFiles/bench_synth_perf.dir/bench_synth_perf.cpp.o"
  "CMakeFiles/bench_synth_perf.dir/bench_synth_perf.cpp.o.d"
  "bench_synth_perf"
  "bench_synth_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synth_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
