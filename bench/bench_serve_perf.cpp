// Daemon-serving stress benchmarks over generated mixed workloads
// (google-benchmark).
//
// Workload shape: a deterministic `oasys_gen_workload` manifest — mixed
// synthesis/yield traffic with bounded per-spec jitter — replayed against
// the serving stack three ways: a direct in-process YieldService (the
// reference), per-batch `oasys shard` fleets, and a resident `oasys
// serve` daemon answering consecutive client batches.  Workers are real
// processes, so the timings include spawn (shard), wire serialization,
// and the coordinator's merge.
//
// `--json <path>` writes the perf-trajectory record instead
// (BENCH_serve_perf.json): direct/shard/daemon wall times, the warm
// resident-pool request time, the daemon-vs-spawn speedup, and — the
// observability angle — the warm request re-run with distributed tracing
// on, recording the traced-request overhead ratio and the span traffic it
// generated.  The embedded equivalence self-check renders every shard and
// daemon outcome (traced and untraced) through the canonical result JSON
// and requires it byte-identical to the direct service's — the record
// fails loudly (non-zero exit) on any divergence, pinning "tracing
// changes no result byte" at bench scale while the timings stay
// informational.  See perf_json.h.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/spec_parser.h"
#include "obs/span.h"
#include "serve/client.h"
#include "serve/server.h"
#include "shard/coordinator.h"
#include "synth/result_json.h"
#include "tech/builtin.h"
#include "yield/service.h"
#include "yield/yield.h"

#include "perf_json.h"

// Paths stamped by bench/CMakeLists.txt: the CLI (execed as the worker
// command) and the workload generator that emits the manifest.
#ifndef OASYS_CLI_PATH
#error "bench_serve_perf requires OASYS_CLI_PATH (see bench/CMakeLists.txt)"
#endif
#ifndef OASYS_GEN_WORKLOAD_PATH
#error \
    "bench_serve_perf requires OASYS_GEN_WORKLOAD_PATH (see bench/CMakeLists.txt)"
#endif

namespace {

using namespace oasys;

constexpr long kWorkloadCount = 24;
constexpr long kWorkloadSeed = 7;

const tech::Technology& tech5() {
  static const tech::Technology t = tech::five_micron();
  return t;
}

synth::SynthOptions serial_opts() {
  synth::SynthOptions o;
  o.jobs = 1;
  return o;
}

// Runs the generator into a scratch directory and replays its manifest
// into the request list the serving stack consumes.  The generator is
// deterministic (seeded counter-based streams), so every bench run — and
// every machine — replays the identical workload.
std::vector<yield::Request> load_workload(long seed) {
  const std::string dir = "/tmp/oasys-bench-workload-" +
                          std::to_string(::getpid()) + "-" +
                          std::to_string(seed);
  const std::string cmd =
      std::string(OASYS_GEN_WORKLOAD_PATH) + " --dir " + dir + " --count " +
      std::to_string(kWorkloadCount) + " --seed " + std::to_string(seed) +
      " --yield-ratio 0.4 --yield-samples 12 > /dev/null";
  if (std::system(cmd.c_str()) != 0) {
    throw std::runtime_error("oasys_gen_workload failed");
  }

  std::ifstream manifest(dir + "/workload.tsv");
  if (!manifest) {
    throw std::runtime_error("cannot read generated workload.tsv");
  }
  std::vector<yield::Request> requests;
  std::string line;
  while (std::getline(manifest, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind;
    std::string spec_file;
    fields >> kind >> spec_file;
    const core::SpecParseResult sr =
        core::load_opamp_spec_file(dir + "/" + spec_file);
    if (!sr.ok()) {
      throw std::runtime_error("generated spec failed to parse: " +
                               spec_file);
    }
    yield::Request req;
    req.spec = sr.spec;
    if (kind == "yield") {
      long samples = 0;
      long seed = 0;
      fields >> samples >> seed;
      req.is_yield = true;
      req.params.samples = static_cast<int>(samples);
      req.params.seed = static_cast<std::uint64_t>(seed);
    } else if (kind != "synth") {
      throw std::runtime_error("unknown manifest kind: " + kind);
    }
    requests.push_back(std::move(req));
  }
  if (requests.empty()) {
    throw std::runtime_error("generated manifest is empty");
  }
  return requests;
}

const std::vector<yield::Request>& workload() {
  static const std::vector<yield::Request> w = load_workload(kWorkloadSeed);
  return w;
}

shard::ShardOptions shard_opts(std::size_t workers) {
  shard::ShardOptions o;
  o.workers = workers;
  o.worker_command = OASYS_CLI_PATH;
  return o;
}

// Resident daemon pool, mixed-traffic variant: a Server on a background
// thread, clients replaying the workload per request.  The first connect
// races the daemon's bind, so it retries.
struct ResidentPool {
  serve::Server server;
  std::thread th;

  explicit ResidentPool(std::size_t workers)
      : server(tech5(), serial_opts(), serve_options(workers)) {
    th = std::thread([this] { server.run(); });
  }
  ~ResidentPool() {
    server.request_stop();
    if (th.joinable()) th.join();
    ::unlink(server.options().socket_path.c_str());
  }

  static serve::ServeOptions serve_options(std::size_t workers) {
    static int counter = 0;
    serve::ServeOptions o;
    o.socket_path =
        "/tmp/oasys-bench-serve-perf-" + std::to_string(::getpid()) + "-" +
        std::to_string(counter++) + ".sock";
    o.workers = workers;
    o.worker_command = OASYS_CLI_PATH;
    return o;
  }

  serve::MixedConnectReport batch(
      const std::vector<yield::Request>& requests) {
    for (int attempt = 0;; ++attempt) {
      try {
        return serve::run_connected_mixed(server.options().socket_path,
                                          tech5(), serial_opts(), requests);
      } catch (const std::runtime_error& e) {
        if (attempt >= 1000 || std::string(e.what()).find(
                                   "cannot connect") == std::string::npos) {
          throw;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
  }
};

// Canonical bytes of one outcome, for the equivalence self-check.
template <typename Outcome>
std::string render(const Outcome& o) {
  if (!o.ok()) return o.error;
  if (o.is_yield) return yield::yield_result_json(o.yield);
  return synth::result_json(o.result);
}

void BM_ShardWorkload(benchmark::State& state) {
  const std::vector<yield::Request>& requests = workload();
  const shard::ShardOptions opts =
      shard_opts(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(shard::run_sharded_requests(
        tech5(), serial_opts(), requests, opts));
  }
}
BENCHMARK(BM_ShardWorkload)->Arg(2)->Arg(4);

// Steady-state daemon serving of the generated workload: the fleet is
// spawned once outside the timing loop and the first (cold) request is
// excluded, so iterations measure a warm resident pool.
void BM_ResidentPoolWorkload(benchmark::State& state) {
  const std::vector<yield::Request>& requests = workload();
  ResidentPool pool(static_cast<std::size_t>(state.range(0)));
  benchmark::DoNotOptimize(pool.batch(requests));  // spin-up + cold caches
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.batch(requests));
  }
}
BENCHMARK(BM_ResidentPoolWorkload)->Arg(2)->Arg(4);

void BM_DirectServiceWorkload(benchmark::State& state) {
  const std::vector<yield::Request>& requests = workload();
  for (auto _ : state) {
    yield::YieldService svc(tech5(), serial_opts());
    benchmark::DoNotOptimize(svc.run_mixed(requests));
  }
}
BENCHMARK(BM_DirectServiceWorkload);

int emit_json(const char* path) {
  const std::vector<yield::Request>& requests = workload();
  std::size_t yield_count = 0;
  for (const yield::Request& r : requests) {
    if (r.is_yield) ++yield_count;
  }

  // Reference: one in-process mixed service over the same manifest.
  yield::YieldService ref_svc(tech5(), serial_opts());
  const std::vector<yield::Outcome> ref = ref_svc.run_mixed(requests);
  std::vector<std::string> expected;
  expected.reserve(ref.size());
  for (const yield::Outcome& o : ref) expected.push_back(render(o));

  bool equivalent = true;
  const auto check = [&](const auto& outcomes, const char* label) {
    if (outcomes.size() != expected.size()) {
      equivalent = false;
      std::fprintf(stderr, "FAIL: %s answered %zu of %zu requests\n",
                   label, outcomes.size(), expected.size());
      return;
    }
    for (std::size_t i = 0; i < expected.size(); ++i) {
      if (render(outcomes[i]) != expected[i]) {
        equivalent = false;
        std::fprintf(stderr, "FAIL: %s diverged on request %zu\n", label,
                     i);
        return;
      }
    }
  };

  const double direct_seconds = oasys::bench::time_best_of(3, [&] {
    yield::YieldService svc(tech5(), serial_opts());
    benchmark::DoNotOptimize(svc.run_mixed(requests));
  });

  // Spawn-per-batch shard fleets at 2 and 4 workers.
  double shard_seconds[2] = {0.0, 0.0};
  const std::size_t shard_counts[] = {2, 4};
  for (std::size_t si = 0; si < 2; ++si) {
    const shard::ShardReport report = shard::run_sharded_requests(
        tech5(), serial_opts(), requests, shard_opts(shard_counts[si]));
    equivalent = equivalent && report.infra_ok();
    check(report.outcomes, "shard");
    shard_seconds[si] = oasys::bench::time_best_of(3, [&] {
      benchmark::DoNotOptimize(shard::run_sharded_requests(
          tech5(), serial_opts(), requests, shard_opts(shard_counts[si])));
    });
  }

  // Resident daemon: cold request, warm (cache-hit) request, the warm
  // request again with distributed tracing on (overhead, apples to
  // apples on the cached path), then a traced request over a fresh-seed
  // workload that must miss the daemon's shared cache and therefore
  // reach the workers — that one proves span traffic flows.
  double serve_cold = 0.0;
  double serve_warm = 0.0;
  double serve_warm_traced = 0.0;
  std::size_t traced_span_events = 0;
  {
    ResidentPool pool(4);
    for (int request = 0; request < 3; ++request) {
      const auto t0 = std::chrono::steady_clock::now();
      const serve::MixedConnectReport report = pool.batch(requests);
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      if (request == 0) {
        serve_cold = elapsed;
      } else if (serve_warm == 0.0 || elapsed < serve_warm) {
        serve_warm = elapsed;
      }
      check(report.outcomes, "daemon");
      // Untraced requests must produce no span traffic at all.
      equivalent = equivalent && report.worker_spans.empty();
    }

    const auto traced_batch = [&](const std::vector<yield::Request>& base,
                                  const char* label, double* seconds) {
      std::vector<yield::Request> traced = base;
      const std::uint64_t trace_id = obs::mint_trace_id();
      for (std::size_t i = 0; i < traced.size(); ++i) {
        traced[i].trace_id = trace_id;
        traced[i].span_id = obs::span_id_for(trace_id, i);
      }
      const auto t0 = std::chrono::steady_clock::now();
      const serve::MixedConnectReport report = pool.batch(traced);
      if (seconds != nullptr) {
        *seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
      }
      std::size_t events = 0;
      for (const shard::SpanSet& set : report.worker_spans) {
        if (set.trace_id != trace_id) {
          equivalent = false;
          std::fprintf(stderr, "FAIL: %s returned an uncorrelated span set\n",
                       label);
        }
        events += set.events.size();
      }
      return std::make_pair(report, events);
    };

    // Warm + traced over the already-cached workload: the overhead number.
    // Cache hits are answered by the daemon itself, so no worker spans
    // are required here.
    check(traced_batch(requests, "daemon (traced, warm)", &serve_warm_traced)
              .first.outcomes,
          "daemon (traced, warm)");

    // Fresh-seed workload: shared-cache misses, so the workers compute
    // and their span sets must come back correlated.
    const std::vector<yield::Request> fresh = load_workload(kWorkloadSeed + 1);
    yield::YieldService fresh_svc(tech5(), serial_opts());
    const std::vector<yield::Outcome> fresh_ref = fresh_svc.run_mixed(fresh);
    const auto [fresh_report, fresh_events] =
        traced_batch(fresh, "daemon (traced, fresh)", nullptr);
    traced_span_events = fresh_events;
    if (fresh_report.outcomes.size() != fresh_ref.size()) {
      equivalent = false;
      std::fprintf(stderr, "FAIL: traced fresh batch answered %zu of %zu\n",
                   fresh_report.outcomes.size(), fresh_ref.size());
    } else {
      for (std::size_t i = 0; i < fresh_ref.size(); ++i) {
        if (render(fresh_report.outcomes[i]) != render(fresh_ref[i])) {
          equivalent = false;
          std::fprintf(stderr,
                       "FAIL: traced fresh batch diverged on request %zu\n",
                       i);
          break;
        }
      }
    }
    if (traced_span_events == 0) {
      equivalent = false;
      std::fprintf(stderr,
                   "FAIL: traced cache-missing request produced no spans\n");
    }
  }

  const double daemon_speedup =
      serve_warm > 0.0 ? shard_seconds[1] / serve_warm : 0.0;
  const double trace_overhead =
      serve_warm > 0.0 ? serve_warm_traced / serve_warm : 0.0;

  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 2;
  }
  std::fprintf(
      out,
      "{\"bench\": \"serve_perf\", \"build_type\": \"%s\",\n"
      " \"requests\": %zu, \"yield_requests\": %zu, "
      "\"workload_seed\": %ld,\n"
      " \"direct_service_seconds\": %.6f,\n"
      " \"shard_w2_seconds\": %.6f, \"shard_w4_seconds\": %.6f,\n"
      " \"serve_w4_cold_seconds\": %.6f, \"serve_w4_warm_seconds\": %.6f,\n"
      " \"serve_w4_warm_traced_seconds\": %.6f,\n"
      " \"daemon_speedup_w4\": %.2f, \"trace_overhead_ratio\": %.3f,\n"
      " \"traced_span_events\": %zu,\n"
      " \"equivalent\": %s}\n",
      OASYS_BUILD_TYPE, requests.size(), yield_count, kWorkloadSeed,
      direct_seconds, shard_seconds[0], shard_seconds[1], serve_cold,
      serve_warm, serve_warm_traced, daemon_speedup, trace_overhead,
      traced_span_events, equivalent ? "true" : "false");
  std::fclose(out);
  if (!equivalent) {
    std::fprintf(stderr,
                 "FAIL: daemon, shard, or traced outcomes diverged from "
                 "the direct service\n");
    return 1;
  }
  std::printf(
      "wrote %s (direct %.3fs, shard w4 %.3fs, daemon warm %.3fs, "
      "speedup %.2fx, trace overhead %.3fx, %zu span events)\n",
      path, direct_seconds, shard_seconds[1], serve_warm, daemon_speedup,
      trace_overhead, traced_span_events);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (const char* path = oasys::bench::parse_json_flag(argc, argv)) {
    return emit_json(path);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
