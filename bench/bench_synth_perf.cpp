// Synthesis-speed microbenchmarks (google-benchmark).
//
// The paper reports "usually under 2 minutes of CPU time per op amp" on a
// VAX 11/785 (Franz LISP); these benchmarks time the same task here.
#include <benchmark/benchmark.h>

#include "baseline/random_sizer.h"
#include "synth/oasys.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"

namespace {

using namespace oasys;

const tech::Technology& tech5() {
  static const tech::Technology t = tech::five_micron();
  return t;
}

void BM_SynthesizeCaseA(benchmark::State& state) {
  const core::OpAmpSpec spec = synth::spec_case_a();
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::synthesize_opamp(tech5(), spec));
  }
}
BENCHMARK(BM_SynthesizeCaseA);

void BM_SynthesizeCaseB(benchmark::State& state) {
  const core::OpAmpSpec spec = synth::spec_case_b();
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::synthesize_opamp(tech5(), spec));
  }
}
BENCHMARK(BM_SynthesizeCaseB);

void BM_SynthesizeCaseC(benchmark::State& state) {
  const core::OpAmpSpec spec = synth::spec_case_c();
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::synthesize_opamp(tech5(), spec));
  }
}
BENCHMARK(BM_SynthesizeCaseC);

void BM_OneStagePlanOnly(benchmark::State& state) {
  const core::OpAmpSpec spec = synth::spec_case_a();
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::design_one_stage_ota(tech5(), spec));
  }
}
BENCHMARK(BM_OneStagePlanOnly);

void BM_TwoStagePlanOnly(benchmark::State& state) {
  const core::OpAmpSpec spec = synth::spec_case_c();
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::design_two_stage(tech5(), spec));
  }
}
BENCHMARK(BM_TwoStagePlanOnly);

void BM_BaselineRandomSearch1k(benchmark::State& state) {
  const core::OpAmpSpec spec = synth::spec_case_b();
  for (auto _ : state) {
    baseline::BaselineOptions bo;
    bo.seed = 1;
    bo.max_evaluations = 1000;
    benchmark::DoNotOptimize(
        baseline::random_search_two_stage(tech5(), spec, bo));
  }
}
BENCHMARK(BM_BaselineRandomSearch1k);

}  // namespace

BENCHMARK_MAIN();
