// Synthesis-speed microbenchmarks (google-benchmark).
//
// The paper reports "usually under 2 minutes of CPU time per op amp" on a
// VAX 11/785 (Franz LISP); these benchmarks time the same task here.
// `--json <path>` writes the perf-trajectory record instead (per-case wall
// times plus a repeat-run determinism self-check; see perf_json.h).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "baseline/random_sizer.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "synth/oasys.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"

#include "jobs_flag.h"
#include "perf_json.h"

namespace {

using namespace oasys;

const tech::Technology& tech5() {
  static const tech::Technology t = tech::five_micron();
  return t;
}

void BM_SynthesizeCaseA(benchmark::State& state) {
  const core::OpAmpSpec spec = synth::spec_case_a();
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::synthesize_opamp(tech5(), spec));
  }
}
BENCHMARK(BM_SynthesizeCaseA);

void BM_SynthesizeCaseB(benchmark::State& state) {
  const core::OpAmpSpec spec = synth::spec_case_b();
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::synthesize_opamp(tech5(), spec));
  }
}
BENCHMARK(BM_SynthesizeCaseB);

void BM_SynthesizeCaseC(benchmark::State& state) {
  const core::OpAmpSpec spec = synth::spec_case_c();
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::synthesize_opamp(tech5(), spec));
  }
}
BENCHMARK(BM_SynthesizeCaseC);

void BM_OneStagePlanOnly(benchmark::State& state) {
  const core::OpAmpSpec spec = synth::spec_case_a();
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::design_one_stage_ota(tech5(), spec));
  }
}
BENCHMARK(BM_OneStagePlanOnly);

void BM_TwoStagePlanOnly(benchmark::State& state) {
  const core::OpAmpSpec spec = synth::spec_case_c();
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::design_two_stage(tech5(), spec));
  }
}
BENCHMARK(BM_TwoStagePlanOnly);

void BM_BaselineRandomSearch1k(benchmark::State& state) {
  const core::OpAmpSpec spec = synth::spec_case_b();
  for (auto _ : state) {
    baseline::BaselineOptions bo;
    bo.seed = 1;
    bo.max_evaluations = 1000;
    benchmark::DoNotOptimize(
        baseline::random_search_two_stage(tech5(), spec, bo));
  }
}
BENCHMARK(BM_BaselineRandomSearch1k);

int emit_json(const char* path) {
  const struct {
    const char* name;
    core::OpAmpSpec spec;
  } cases[] = {{"case_a", synth::spec_case_a()},
               {"case_b", synth::spec_case_b()},
               {"case_c", synth::spec_case_c()}};
  bool deterministic = true;

  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 2;
  }
  std::fprintf(out,
               "{\"bench\": \"synth_perf\", \"build_type\": \"%s\", "
               "\"hardware_jobs\": %zu",
               OASYS_BUILD_TYPE, exec::hardware_jobs());
  for (const auto& c : cases) {
    const synth::SynthesisResult r1 = synth::synthesize_opamp(tech5(), c.spec);
    const synth::SynthesisResult r2 = synth::synthesize_opamp(tech5(), c.spec);
    const bool equal =
        r1.selection.best == r2.selection.best &&
        r1.success() == r2.success() &&
        (!r1.success() ||
         r1.best()->predicted.area == r2.best()->predicted.area);
    deterministic &= equal;
    const double seconds = oasys::bench::time_best_of(5, [&] {
      benchmark::DoNotOptimize(synth::synthesize_opamp(tech5(), c.spec));
    });
    std::fprintf(out,
                 ",\n \"%s\": {\"seconds\": %.6f, \"success\": %s, "
                 "\"repeat_equal\": %s}",
                 c.name, seconds, r1.success() ? "true" : "false",
                 equal ? "true" : "false");
  }
  // Metrics block: registry contents of one canonical case_b synthesis
  // after a reset (plan steps, rule firings, style attempts).
  oasys::obs::Registry::global().reset();
  {
    const synth::SynthesisResult r =
        synth::synthesize_opamp(tech5(), synth::spec_case_b());
    benchmark::DoNotOptimize(r);
  }
  std::fprintf(out, ",\n \"metrics\": %s",
               oasys::obs::metrics_json(
                   oasys::obs::Registry::global().snapshot())
                   .c_str());
  std::fprintf(out, ",\n \"deterministic\": %s}\n",
               deterministic ? "true" : "false");
  std::fclose(out);
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: determinism self-check failed\n");
    return 1;
  }
  std::printf("wrote %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (!oasys::bench::apply_jobs_flag(argc, argv)) return 2;
  if (const char* path = oasys::bench::parse_json_flag(argc, argv)) {
    return emit_json(path);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
