// Figure 6 reproduction: gain-phase (Bode) plot for synthesized test
// circuit C, 1 Hz .. 1 MHz and beyond.  Prints the series the paper plots
// plus an ASCII rendering; the paper's shape to check: ~100 dB at DC, a
// dominant-pole rolloff through 0 dB in the MHz range with the phase
// falling toward -180.
#include <algorithm>
#include <cstdio>

#include "synth/oasys.h"
#include "synth/test_cases.h"
#include "synth/testbench.h"
#include "tech/builtin.h"
#include "util/units.h"

#include "jobs_flag.h"

int main(int argc, char** argv) {
  if (!oasys::bench::apply_jobs_flag(argc, argv)) return 2;
  using namespace oasys;
  const tech::Technology t = tech::five_micron();

  const core::OpAmpSpec spec = synth::spec_case_c();
  const synth::SynthesisResult r = synth::synthesize_opamp(t, spec);
  if (!r.success()) {
    std::puts("case C synthesis failed");
    return 1;
  }
  synth::MeasureOptions mo;
  mo.ac_fmin = 1.0;
  mo.ac_fmax = 1e8;
  mo.ac_points = 113;
  mo.measure_slew = false;  // AC only for this figure
  mo.measure_icmr = false;
  const synth::MeasuredOpAmp m = synth::measure_opamp(*r.best(), t, mo);
  if (!m.ok) {
    std::printf("simulation failed: %s\n", m.error.c_str());
    return 1;
  }

  std::puts("=== Figure 6: gain-phase plot for synthesized test circuit C "
            "===\n");
  std::puts("  freq (Hz)   gain (dB)   phase (deg)");
  for (std::size_t i = 0; i < m.bode.freqs.size(); i += 4) {
    std::printf("%11.3g   %9.2f   %11.2f\n", m.bode.freqs[i],
                m.bode.gain_db[i], m.bode.phase_deg[i]);
  }

  // ASCII gain plot, 1 Hz .. 100 MHz.
  std::puts("\n  gain (dB), log-frequency axis:");
  const double gmax =
      *std::max_element(m.bode.gain_db.begin(), m.bode.gain_db.end());
  for (std::size_t i = 0; i < m.bode.freqs.size(); i += 4) {
    const int width = std::max(
        0, static_cast<int>((m.bode.gain_db[i] + 20.0) / (gmax + 20.0) *
                            60.0));
    std::printf("%9.3g |%s\n", m.bode.freqs[i],
                std::string(static_cast<std::size_t>(width), '#').c_str());
  }
  std::printf("\nDC gain %.1f dB, unity-gain %.3g Hz, phase margin %.1f "
              "deg\n",
              m.perf.gain_db, m.perf.gbw, m.perf.pm_deg);
  return 0;
}
