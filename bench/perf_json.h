// Shared pieces of the JSON-emitting perf harness mode.
//
// `bench_sim_perf --json <path>` / `bench_synth_perf --json <path>` write a
// machine-readable perf record (the repo's perf trajectory; see
// BENCH_sim_perf.json) instead of running google-benchmark.  Timings are
// best-of-N wall clock; a determinism self-check makes the record fail
// loudly (non-zero exit) if results ever depend on buffer reuse or thread
// count, while the timings themselves are informational.
#pragma once

#include <chrono>
#include <cstring>
#include <functional>

// Stamped into the JSON records by bench/CMakeLists.txt; empty or absent
// under multi-config generators.
#ifndef OASYS_BUILD_TYPE
#define OASYS_BUILD_TYPE "unknown"
#endif

namespace oasys::bench {

// Returns the value following "--json", or nullptr when the flag is absent.
inline const char* parse_json_flag(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  }
  return nullptr;
}

inline double time_best_of(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

}  // namespace oasys::bench
