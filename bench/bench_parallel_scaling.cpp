// Parallel-scaling benchmark for the work executor (JSON output).
//
// Times the two hot workloads the executor parallelizes — a multi-candidate
// synthesis batch (many specs, three style designers each) and the
// per-frequency AC fan-out — at 1/2/4/hardware threads, and self-checks
// that every thread count produces bit-for-bit identical numbers.  The
// emitted JSON is the perf-trajectory record:
//
//   {"bench": "parallel_scaling", "hardware_jobs": H,
//    "synthesis_batch": {"specs": S, "deterministic": true,
//                        "runs": [{"jobs": 1, "seconds": t, "speedup": x},
//                                 ...]},
//    "ac_points": {...same shape...}}
//
// `speedup` is serial-seconds / seconds; on a single-core host every entry
// sits near 1.0 by construction.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "spice/ac.h"
#include "synth/oasys.h"
#include "synth/test_cases.h"
#include "synth/testbench.h"
#include "tech/builtin.h"
#include "util/units.h"

#include "jobs_flag.h"

namespace {

using namespace oasys;

double time_best_of(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

// The multi-candidate workload: the paper's three test cases fanned out
// over a grid of GBW / load variations — the shape of a sweep-service
// request.
std::vector<core::OpAmpSpec> workload_specs() {
  const std::vector<core::OpAmpSpec> bases = {
      synth::spec_case_a(), synth::spec_case_b(), synth::spec_case_c()};
  std::vector<core::OpAmpSpec> specs;
  for (const auto& base : bases) {
    for (const double gbw_scale : {0.8, 1.0, 1.25, 1.5}) {
      for (const double cl_scale : {0.75, 1.0}) {
        core::OpAmpSpec s = base;
        s.gbw_min *= gbw_scale;
        s.cload *= cl_scale;
        specs.push_back(s);
      }
    }
  }
  return specs;
}

std::vector<std::size_t> jobs_ladder() {
  std::vector<std::size_t> jobs = {1, 2, 4, exec::hardware_jobs()};
  std::sort(jobs.begin(), jobs.end());
  jobs.erase(std::unique(jobs.begin(), jobs.end()), jobs.end());
  return jobs;
}

void emit_runs(const std::vector<std::size_t>& jobs,
               const std::vector<double>& seconds) {
  std::printf("\"runs\": [");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    std::printf("%s{\"jobs\": %zu, \"seconds\": %.6f, \"speedup\": %.3f}",
                i == 0 ? "" : ", ", jobs[i], seconds[i],
                seconds[0] / seconds[i]);
  }
  std::printf("]");
}

}  // namespace

int main(int argc, char** argv) {
  if (!oasys::bench::apply_jobs_flag(argc, argv)) return 2;
  const tech::Technology t = tech::five_micron();
  const std::vector<core::OpAmpSpec> specs = workload_specs();
  const std::vector<std::size_t> jobs = jobs_ladder();
  bool all_deterministic = true;

  std::printf("{\"bench\": \"parallel_scaling\", \"hardware_jobs\": %zu",
              exec::hardware_jobs());

  // ---- synthesis batch -----------------------------------------------------
  {
    synth::SynthOptions serial;
    serial.jobs = 1;
    const std::vector<synth::SynthesisResult> reference =
        synth::synthesize_opamp_batch(t, specs, serial);

    std::vector<double> seconds;
    bool deterministic = true;
    for (const std::size_t j : jobs) {
      synth::SynthOptions opts;
      opts.jobs = j;
      std::vector<synth::SynthesisResult> out;
      out = synth::synthesize_opamp_batch(t, specs, opts);  // warm-up
      seconds.push_back(time_best_of(3, [&] {
        out = synth::synthesize_opamp_batch(t, specs, opts);
      }));
      for (std::size_t i = 0; i < out.size(); ++i) {
        deterministic &= out[i].selection.best == reference[i].selection.best;
        for (std::size_t k = 0; k < out[i].candidates.size(); ++k) {
          deterministic &= out[i].candidates[k].predicted.area ==
                           reference[i].candidates[k].predicted.area;
        }
      }
    }
    all_deterministic &= deterministic;
    std::printf(",\n \"synthesis_batch\": {\"specs\": %zu, "
                "\"deterministic\": %s, ",
                specs.size(), deterministic ? "true" : "false");
    emit_runs(jobs, seconds);
    std::printf("}");
  }

  // ---- AC frequency fan-out ------------------------------------------------
  {
    const synth::SynthesisResult r =
        synth::synthesize_opamp(t, synth::spec_case_b());
    if (!r.success()) {
      std::printf("}\n");
      std::fprintf(stderr, "case B synthesis failed\n");
      return 1;
    }
    synth::MeasureOptions mo;
    mo.ac_points = 481;  // dense Bode: one LU factorization per point
    mo.measure_slew = false;
    mo.measure_icmr = false;
    mo.measure_noise = false;

    std::vector<double> seconds;
    bool deterministic = true;
    synth::MeasureOptions serial = mo;
    serial.jobs = 1;
    const synth::MeasuredOpAmp reference =
        synth::measure_opamp(*r.best(), t, serial);
    for (const std::size_t j : jobs) {
      synth::MeasureOptions opts = mo;
      opts.jobs = j;
      synth::MeasuredOpAmp m = synth::measure_opamp(*r.best(), t, opts);
      seconds.push_back(time_best_of(
          3, [&] { m = synth::measure_opamp(*r.best(), t, opts); }));
      deterministic &= m.ok == reference.ok &&
                       m.perf.gain_db == reference.perf.gain_db &&
                       m.perf.gbw == reference.perf.gbw &&
                       m.perf.pm_deg == reference.perf.pm_deg &&
                       m.bode.phase_deg == reference.bode.phase_deg;
    }
    all_deterministic &= deterministic;
    std::printf(",\n \"ac_points\": {\"points\": %zu, "
                "\"deterministic\": %s, ",
                mo.ac_points, deterministic ? "true" : "false");
    emit_runs(jobs, seconds);
    std::printf("}");
  }

  std::printf("}\n");
  if (!all_deterministic) {
    std::fprintf(stderr,
                 "FAIL: results differ across thread counts\n");
    return 1;
  }
  return 0;
}
