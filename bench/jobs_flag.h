// Shared --jobs handling for the bench harnesses.
//
// Every harness accepts `--jobs N` (worker threads for synthesis and
// simulation; default hardware concurrency, 1 = serial).  Results are
// identical at every setting — the flag only changes wall-clock time.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "exec/executor.h"

namespace oasys::bench {

// Applies --jobs N from argv; returns false (after printing a message) on
// a malformed value so the harness can exit non-zero.  Unrelated arguments
// are left for the harness to interpret.
inline bool apply_jobs_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") != 0) continue;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "--jobs requires a value\n");
      return false;
    }
    char* end = nullptr;
    errno = 0;
    const long n = std::strtol(argv[i + 1], &end, 10);
    if (errno == ERANGE || end == argv[i + 1] || *end != '\0' || n < 1) {
      std::fprintf(stderr, "--jobs requires a positive integer, got '%s'\n",
                   argv[i + 1]);
      return false;
    }
    exec::set_default_jobs(static_cast<std::size_t>(n));
    return true;
  }
  return true;
}

}  // namespace oasys::bench
