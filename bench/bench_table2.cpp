// Table 2 reproduction: specifications and results for the three OASYS
// test cases A, B, C.
//
// For each case: synthesize (breadth-first over styles), report which
// style won and why, and verify the winner with the built-in simulator.
// The paper's qualitative content to check against:
//   A -> one-stage meets everything, selected on area;
//   B -> one-stage style infeasible (gain + offset + swing), two-stage
//        straightforward;
//   C -> complex two-stage (cascoded bias/load mirror, level shifter),
//        phase margin under-achieved but shipped as a first cut.
#include <chrono>
#include <cstdio>

#include "synth/oasys.h"
#include "synth/report.h"
#include "synth/test_cases.h"
#include "synth/testbench.h"
#include "tech/builtin.h"
#include "util/units.h"

#include "jobs_flag.h"

int main(int argc, char** argv) {
  if (!oasys::bench::apply_jobs_flag(argc, argv)) return 2;
  using namespace oasys;
  const tech::Technology t = tech::five_micron();

  std::puts("=== Table 2: specifications and results for OASYS test "
            "cases ===");
  for (const core::OpAmpSpec& spec : synth::paper_test_cases()) {
    std::printf("\n----- test case %s -----\n", spec.name.c_str());
    std::fputs(spec.to_string().c_str(), stdout);

    const auto t0 = std::chrono::steady_clock::now();
    const synth::SynthesisResult r = synth::synthesize_opamp(t, spec);
    const auto t1 = std::chrono::steady_clock::now();
    const double synth_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    std::puts("style selection:");
    std::fputs(r.selection.summary.c_str(), stdout);
    for (const auto& cand : r.candidates) {
      if (!cand.feasible) {
        std::printf("  why %s failed: %s\n", to_string(cand.style),
                    cand.trace.abort_reason.c_str());
      }
    }
    if (!r.success()) continue;
    const synth::OpAmpDesign& best = *r.best();
    std::printf("selected: %s (%d rule firings)\n",
                best.style_name().c_str(), best.trace.rules_fired);

    const synth::MeasuredOpAmp m = synth::measure_opamp(best, t);
    if (!m.ok) {
      std::printf("  simulation failed: %s\n", m.error.c_str());
      continue;
    }
    std::fputs(synth::comparison_table(best, &m).c_str(), stdout);
    std::printf("synthesis time: %.1f ms (paper: 'under 2 minutes of CPU "
                "time per op amp' on a VAX 11/785)\n",
                synth_ms);
  }
  return 0;
}
