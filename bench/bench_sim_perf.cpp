// Circuit-simulator microbenchmarks (google-benchmark): operating point,
// AC sweep, and transient throughput on a synthesized op amp — the
// substrate cost behind every verification run.
#include <benchmark/benchmark.h>

#include "numeric/interpolate.h"
#include "spice/ac.h"
#include "spice/dc.h"
#include "spice/tran.h"
#include "synth/netlist_builder.h"
#include "synth/oasys.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"

namespace {

using namespace oasys;

struct Fixture {
  tech::Technology t = tech::five_micron();
  ckt::Circuit circuit;
  sim::OpResult op;

  Fixture() {
    const synth::SynthesisResult r =
        synth::synthesize_opamp(t, synth::spec_case_b());
    const synth::OpAmpDesign& d = *r.best();
    const synth::BuiltOpAmp nodes = synth::build_opamp(d, t, circuit);
    circuit.add_vsource("VDD", nodes.vdd, ckt::kGround,
                        ckt::Waveform::dc(t.vdd));
    circuit.add_vsource("VSS", nodes.vss, ckt::kGround,
                        ckt::Waveform::dc(t.vss));
    circuit.add_vsource("VIP", nodes.inp, ckt::kGround,
                        ckt::Waveform::ac(0.0, 0.5, 0.0));
    circuit.add_vsource("VIN", nodes.inn, ckt::kGround,
                        ckt::Waveform::ac(0.0, 0.5, 180.0));
    circuit.add_capacitor("CL", nodes.out, ckt::kGround, 10e-12);
    op = sim::dc_operating_point(circuit, t);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_OperatingPointCold(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::dc_operating_point(f.circuit, f.t));
  }
}
BENCHMARK(BM_OperatingPointCold);

void BM_OperatingPointWarm(benchmark::State& state) {
  Fixture& f = fixture();
  sim::OpOptions opts;
  opts.initial_guess = f.op.solution;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::dc_operating_point(f.circuit, f.t, opts));
  }
}
BENCHMARK(BM_OperatingPointWarm);

void BM_AcSweep61Points(benchmark::State& state) {
  Fixture& f = fixture();
  const auto freqs = num::logspace(1.0, 1e8, 61);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::ac_analysis(f.circuit, f.t, f.op, freqs));
  }
}
BENCHMARK(BM_AcSweep61Points);

void BM_Transient200Steps(benchmark::State& state) {
  Fixture& f = fixture();
  sim::TranOptions to;
  to.tstop = 2e-6;
  to.dt = 1e-8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::transient(f.circuit, f.t, f.op, to));
  }
}
BENCHMARK(BM_Transient200Steps);

}  // namespace

BENCHMARK_MAIN();
