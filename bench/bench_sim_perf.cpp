// Circuit-simulator microbenchmarks: operating point, AC sweep, and
// transient throughput on a synthesized op amp — the substrate cost behind
// every verification run.
//
// Two modes:
//  * default — the google-benchmark timing loops;
//  * --json <path> — the perf-trajectory record: measures the pre-workspace
//    baseline kernels (by-value LU, per-iteration heap allocation, exactly
//    the code shape this repo shipped before workspace reuse) against the
//    production workspace-reusing paths in the same binary, plus paired
//    scalar-vs-batch device-eval timings (DC Newton, transient, and the AC
//    sweep at 1/2/4 lanes) in the CASPI SIMD-vs-scalar bench style.
//    Self-checks that every pairing produces bit-for-bit identical numbers
//    (also across --jobs 1/2/4) and writes the JSON record.  Exit is
//    non-zero only when an equivalence/determinism self-check fails;
//    timings are informational.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "numeric/interpolate.h"
#include "numeric/linear.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "spice/ac.h"
#include "spice/dc.h"
#include "spice/measure.h"
#include "spice/small_signal.h"
#include "spice/sweep.h"
#include "spice/tran.h"
#include "synth/netlist_builder.h"
#include "synth/oasys.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"
#include "util/units.h"

#include "jobs_flag.h"
#include "perf_json.h"

namespace {

using namespace oasys;

struct Fixture {
  tech::Technology t = tech::five_micron();
  ckt::Circuit circuit;
  sim::OpResult op;

  Fixture() {
    const synth::SynthesisResult r =
        synth::synthesize_opamp(t, synth::spec_case_b());
    const synth::OpAmpDesign& d = *r.best();
    const synth::BuiltOpAmp nodes = synth::build_opamp(d, t, circuit);
    circuit.add_vsource("VDD", nodes.vdd, ckt::kGround,
                        ckt::Waveform::dc(t.vdd));
    circuit.add_vsource("VSS", nodes.vss, ckt::kGround,
                        ckt::Waveform::dc(t.vss));
    circuit.add_vsource("VIP", nodes.inp, ckt::kGround,
                        ckt::Waveform::ac(0.0, 0.5, 0.0));
    circuit.add_vsource("VIN", nodes.inn, ckt::kGround,
                        ckt::Waveform::ac(0.0, 0.5, 180.0));
    circuit.add_capacitor("CL", nodes.out, ckt::kGround, 10e-12);
    op = sim::dc_operating_point(circuit, t);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_OperatingPointCold(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::dc_operating_point(f.circuit, f.t));
  }
}
BENCHMARK(BM_OperatingPointCold);

void BM_OperatingPointWarm(benchmark::State& state) {
  Fixture& f = fixture();
  sim::OpOptions opts;
  opts.initial_guess = f.op.solution;
  sim::SimWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::dc_operating_point(f.circuit, f.t, opts, &ws));
  }
}
BENCHMARK(BM_OperatingPointWarm);

// Paired device-eval loops (CASPI style): identical warm solve, only the
// MOS evaluation path differs.  Results are bit-for-bit identical.
void BM_OperatingPointWarmScalarEval(benchmark::State& state) {
  Fixture& f = fixture();
  sim::OpOptions opts;
  opts.initial_guess = f.op.solution;
  opts.device_eval = sim::DeviceEval::kScalar;
  sim::SimWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::dc_operating_point(f.circuit, f.t, opts, &ws));
  }
}
BENCHMARK(BM_OperatingPointWarmScalarEval);

void BM_OperatingPointWarmBatchEval(benchmark::State& state) {
  Fixture& f = fixture();
  sim::OpOptions opts;
  opts.initial_guess = f.op.solution;
  opts.device_eval = sim::DeviceEval::kBatch;
  sim::SimWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::dc_operating_point(f.circuit, f.t, opts, &ws));
  }
}
BENCHMARK(BM_OperatingPointWarmBatchEval);

void BM_AcSweep61Points(benchmark::State& state) {
  Fixture& f = fixture();
  const auto freqs = num::logspace(1.0, 1e8, 61);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::ac_analysis(f.circuit, f.t, f.op, freqs));
  }
}
BENCHMARK(BM_AcSweep61Points);

void BM_Transient200Steps(benchmark::State& state) {
  Fixture& f = fixture();
  sim::TranOptions to;
  to.tstop = 2e-6;
  to.dt = 1e-8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::transient(f.circuit, f.t, f.op, to));
  }
}
BENCHMARK(BM_Transient200Steps);

// ---- JSON perf record -------------------------------------------------------

using Cplx = std::complex<double>;

// The pre-workspace Newton solve, reproduced exactly as the seed shipped
// it: Jacobian and residual allocated per call, by-value LU (one matrix
// copy), and fresh RHS + step vectors per iteration.  Performs the same
// arithmetic as the production path, so its solution must match
// sim::dc_operating_point bit for bit.
bool baseline_newton(const sim::NonlinearSystem& sys,
                     const sim::OpOptions& opts, std::vector<double>* x) {
  const std::size_t n = sys.layout().size();
  const std::size_t nv = sys.layout().num_node_unknowns();
  num::RealMatrix jac(n, n);
  std::vector<double> f(n);
  sim::NonlinearSystem::EvalOptions eval_opts;
  eval_opts.gmin = opts.gmin;
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    sys.eval(*x, eval_opts, &jac, &f);
    auto lu = num::lu_factor(jac);
    if (lu.singular) return false;
    std::vector<double> rhs(n);
    for (std::size_t i = 0; i < n; ++i) rhs[i] = -f[i];
    std::vector<double> dx = num::lu_solve(lu, rhs);
    double max_dv = 0.0;
    for (std::size_t i = 0; i < nv; ++i) {
      max_dv = std::max(max_dv, std::abs(dx[i]));
    }
    double scale = 1.0;
    if (max_dv > opts.vlimit_step) scale = opts.vlimit_step / max_dv;
    for (std::size_t i = 0; i < n; ++i) (*x)[i] += scale * dx[i];
    if (max_dv < opts.vntol) {
      sys.eval(*x, eval_opts, nullptr, &f);
      double max_node_residual = 0.0;
      for (std::size_t i = 0; i < nv; ++i) {
        max_node_residual = std::max(max_node_residual, std::abs(f[i]));
      }
      if (max_node_residual < opts.abstol) return true;
    }
  }
  return false;
}

// The pre-workspace warm dc_operating_point flow (plain-Newton strategy +
// final bookkeeping pass), so baseline and production pay identical
// system-construction and result-assembly costs and differ only in the
// kernel-loop allocation behavior.
sim::OpResult baseline_dc(const ckt::Circuit& c, const tech::Technology& t,
                          const sim::OpOptions& opts) {
  sim::NonlinearSystem sys(c, t);
  const std::size_t n = sys.layout().size();
  sim::OpResult result;
  std::vector<double> x = opts.initial_guess.size() == n
                              ? opts.initial_guess
                              : std::vector<double>(n, 0.0);
  std::vector<double> trial = x;
  if (baseline_newton(sys, opts, &trial)) {
    result.converged = true;
    result.strategy = "newton";
    result.solution = std::move(trial);
    sim::NonlinearSystem::EvalOptions eval_opts;
    eval_opts.gmin = opts.gmin;
    sys.eval(result.solution, eval_opts, nullptr, nullptr, &result.devices);
  } else {
    result.solution = std::move(x);
  }
  return result;
}

// The pre-workspace AC sweep, reproduced exactly: a fresh complex matrix
// per frequency point, element-wise fill, by-value factor and solve.
std::vector<std::vector<Cplx>> baseline_ac(const num::RealMatrix& g,
                                           const num::RealMatrix& cap,
                                           const std::vector<Cplx>& rhs,
                                           const std::vector<double>& freqs,
                                           bool* ok) {
  const std::size_t n = g.rows();
  std::vector<std::vector<Cplx>> solutions(freqs.size());
  *ok = true;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    const double w = util::kTwoPi * freqs[i];
    num::ComplexMatrix y(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t col = 0; col < n; ++col) {
        y(r, col) = Cplx(g(r, col), w * cap(r, col));
      }
    }
    auto lu = num::lu_factor(std::move(y));
    if (lu.singular) {
      *ok = false;
      return solutions;
    }
    solutions[i] = num::lu_solve(lu, rhs);
  }
  return solutions;
}

// The fixture's AC excitation vector, as ac_analysis assembles it.
std::vector<Cplx> ac_excitation(const ckt::Circuit& c,
                                const sim::MnaLayout& layout) {
  std::vector<Cplx> rhs(layout.size(), Cplx{});
  for (std::size_t k = 0; k < c.vsources().size(); ++k) {
    const auto& v = c.vsources()[k];
    if (v.wave.ac_mag() != 0.0) {
      const double ph = util::rad(v.wave.ac_phase_deg());
      rhs[layout.branch_index(k)] = std::polar(v.wave.ac_mag(), ph);
    }
  }
  return rhs;
}

int emit_json(const char* path) {
  Fixture& f = fixture();
  sim::NonlinearSystem sys(f.circuit, f.t);
  const std::size_t n = sys.layout().size();
  const auto freqs = num::logspace(1.0, 1e8, 61);
  bool deterministic = true;

  // ---- DC Newton: warm solves, baseline vs workspace ----------------------
  sim::OpOptions warm;
  warm.initial_guess = f.op.solution;
  const int dc_solves = 2000;

  const sim::OpResult dc_base_ref = baseline_dc(f.circuit, f.t, warm);
  sim::SimWorkspace ws;
  const sim::OpResult dc_ws_ref =
      sim::dc_operating_point(f.circuit, f.t, warm, &ws);
  const bool dc_equal = dc_base_ref.converged && dc_ws_ref.converged &&
                        dc_base_ref.solution == dc_ws_ref.solution;
  deterministic &= dc_equal;

  const double dc_base_s = oasys::bench::time_best_of(7, [&] {
    for (int i = 0; i < dc_solves; ++i) {
      sim::OpResult r = baseline_dc(f.circuit, f.t, warm);
      benchmark::DoNotOptimize(r);
    }
  });
  const double dc_ws_s = oasys::bench::time_best_of(7, [&] {
    for (int i = 0; i < dc_solves; ++i) {
      sim::OpResult r = sim::dc_operating_point(f.circuit, f.t, warm, &ws);
      benchmark::DoNotOptimize(r);
    }
  });

  // ---- AC sweep: baseline vs workspace, plus jobs invariance --------------
  num::RealMatrix g, cap;
  sim::build_small_signal_matrices(f.circuit, sys.layout(), f.op, &g, &cap);
  const std::vector<Cplx> rhs = ac_excitation(f.circuit, sys.layout());

  bool base_ok = false;
  const auto ac_base_ref = baseline_ac(g, cap, rhs, freqs, &base_ok);
  const sim::AcResult ac_ws_ref =
      sim::ac_analysis(f.circuit, f.t, f.op, freqs, 1);
  bool ac_equal = base_ok && ac_ws_ref.ok &&
                  ac_base_ref == ac_ws_ref.solutions;
  bool ac_jobs_invariant = true;
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{4}}) {
    const sim::AcResult r =
        sim::ac_analysis(f.circuit, f.t, f.op, freqs, jobs);
    ac_jobs_invariant &= r.ok && r.solutions == ac_ws_ref.solutions;
  }
  deterministic &= ac_equal && ac_jobs_invariant;

  const int ac_repeats = 50;
  const double ac_base_s = oasys::bench::time_best_of(7, [&] {
    bool ok = false;
    for (int i = 0; i < ac_repeats; ++i) {
      auto s = baseline_ac(g, cap, rhs, freqs, &ok);
      benchmark::DoNotOptimize(s);
    }
  });
  const double ac_ws_s = oasys::bench::time_best_of(7, [&] {
    for (int i = 0; i < ac_repeats; ++i) {
      sim::AcResult r = sim::ac_analysis(f.circuit, f.t, f.op, freqs, 1);
      benchmark::DoNotOptimize(r);
    }
  });

  // ---- Transient: workspace path wall time (trajectory data) --------------
  sim::TranOptions to;
  to.tstop = 2e-6;
  to.dt = 1e-8;
  const sim::TranResult tr1 = sim::transient(f.circuit, f.t, f.op, to);
  const sim::TranResult tr2 = sim::transient(f.circuit, f.t, f.op, to);
  const bool tran_equal = tr1.ok && tr2.ok && tr1.states == tr2.states;
  deterministic &= tran_equal;
  const double tran_s = oasys::bench::time_best_of(3, [&] {
    sim::TranResult r = sim::transient(f.circuit, f.t, f.op, to);
    benchmark::DoNotOptimize(r);
  });

  // ---- Device eval: scalar reference vs SoA batch kernel ------------------
  // Same solves, same inputs, separate workspaces (each keeps its own
  // device table); every pairing must agree bit for bit.
  auto device_ops_equal = [](const std::vector<sim::DeviceOp>& a,
                             const std::vector<sim::DeviceOp>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const sim::DeviceOp& p = a[i];
      const sim::DeviceOp& q = b[i];
      if (p.region != q.region || p.vgs != q.vgs || p.vds != q.vds ||
          p.vbs != q.vbs || p.id != q.id || p.vth != q.vth ||
          p.vov != q.vov || p.vdsat != q.vdsat || p.gm != q.gm ||
          p.gds != q.gds || p.gmb != q.gmb || p.id_ds != q.id_ds ||
          p.di_dvg != q.di_dvg || p.di_dvd != q.di_dvd ||
          p.di_dvs != q.di_dvs || p.di_dvb != q.di_dvb || p.cgs != q.cgs ||
          p.cgd != q.cgd || p.cgb != q.cgb || p.cdb != q.cdb ||
          p.csb != q.csb) {
        return false;
      }
    }
    return true;
  };

  sim::OpOptions warm_scalar = warm;
  warm_scalar.device_eval = sim::DeviceEval::kScalar;
  sim::OpOptions warm_batch = warm;
  warm_batch.device_eval = sim::DeviceEval::kBatch;
  sim::SimWorkspace ws_scalar;
  sim::SimWorkspace ws_batch;

  const sim::OpResult de_dc_scalar =
      sim::dc_operating_point(f.circuit, f.t, warm_scalar, &ws_scalar);
  const sim::OpResult de_dc_batch =
      sim::dc_operating_point(f.circuit, f.t, warm_batch, &ws_batch);
  bool de_equal =
      de_dc_scalar.converged && de_dc_batch.converged &&
      de_dc_scalar.strategy == de_dc_batch.strategy &&
      de_dc_scalar.total_iterations == de_dc_batch.total_iterations &&
      de_dc_scalar.solution == de_dc_batch.solution &&
      device_ops_equal(de_dc_scalar.devices, de_dc_batch.devices);

  const double de_dc_scalar_s = oasys::bench::time_best_of(7, [&] {
    for (int i = 0; i < dc_solves; ++i) {
      sim::OpResult r =
          sim::dc_operating_point(f.circuit, f.t, warm_scalar, &ws_scalar);
      benchmark::DoNotOptimize(r);
    }
  });
  const double de_dc_batch_s = oasys::bench::time_best_of(7, [&] {
    for (int i = 0; i < dc_solves; ++i) {
      sim::OpResult r =
          sim::dc_operating_point(f.circuit, f.t, warm_batch, &ws_batch);
      benchmark::DoNotOptimize(r);
    }
  });

  sim::TranOptions to_scalar = to;
  to_scalar.device_eval = sim::DeviceEval::kScalar;
  sim::TranOptions to_batch = to;
  to_batch.device_eval = sim::DeviceEval::kBatch;
  const sim::TranResult de_tr_scalar =
      sim::transient(f.circuit, f.t, f.op, to_scalar);
  const sim::TranResult de_tr_batch =
      sim::transient(f.circuit, f.t, f.op, to_batch);
  de_equal &= de_tr_scalar.ok && de_tr_batch.ok &&
              de_tr_scalar.states == de_tr_batch.states;
  const double de_tran_scalar_s = oasys::bench::time_best_of(3, [&] {
    sim::TranResult r = sim::transient(f.circuit, f.t, f.op, to_scalar);
    benchmark::DoNotOptimize(r);
  });
  const double de_tran_batch_s = oasys::bench::time_best_of(3, [&] {
    sim::TranResult r = sim::transient(f.circuit, f.t, f.op, to_batch);
    benchmark::DoNotOptimize(r);
  });

  // AC sweep over the input common-mode at 1/2/4 lanes: each lane runs
  // cold DC + 61-point AC per value, so both the Newton loop and the
  // lane-parallel fan-out exercise the selected device-eval path.
  const std::vector<double> sweep_vals = {-0.01, 0.0, 0.01, 0.02};
  sim::OpOptions sweep_scalar;
  sweep_scalar.device_eval = sim::DeviceEval::kScalar;
  sim::OpOptions sweep_batch;
  sweep_batch.device_eval = sim::DeviceEval::kBatch;
  auto sweep_equal = [](const sim::AcSweepResult& a,
                        const sim::AcSweepResult& b) {
    if (!a.ok || !b.ok || a.ops.size() != b.ops.size()) return false;
    for (std::size_t i = 0; i < a.ops.size(); ++i) {
      if (a.ops[i].solution != b.ops[i].solution) return false;
      if (a.points[i].solutions != b.points[i].solutions) return false;
    }
    return true;
  };
  const sim::AcSweepResult de_sweep_ref = sim::ac_sweep_vsource(
      f.circuit, f.t, "VIP", sweep_vals, freqs, sweep_scalar, 1);
  struct LanePair {
    std::size_t jobs = 0;
    double scalar_s = 0.0;
    double batch_s = 0.0;
  };
  std::vector<LanePair> lane_pairs;
  for (const std::size_t jobs :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const sim::AcSweepResult rs = sim::ac_sweep_vsource(
        f.circuit, f.t, "VIP", sweep_vals, freqs, sweep_scalar, jobs);
    const sim::AcSweepResult rb = sim::ac_sweep_vsource(
        f.circuit, f.t, "VIP", sweep_vals, freqs, sweep_batch, jobs);
    de_equal &= sweep_equal(rs, de_sweep_ref) &&
                sweep_equal(rb, de_sweep_ref);
    LanePair pair;
    pair.jobs = jobs;
    pair.scalar_s = oasys::bench::time_best_of(5, [&] {
      sim::AcSweepResult r = sim::ac_sweep_vsource(
          f.circuit, f.t, "VIP", sweep_vals, freqs, sweep_scalar, jobs);
      benchmark::DoNotOptimize(r);
    });
    pair.batch_s = oasys::bench::time_best_of(5, [&] {
      sim::AcSweepResult r = sim::ac_sweep_vsource(
          f.circuit, f.t, "VIP", sweep_vals, freqs, sweep_batch, jobs);
      benchmark::DoNotOptimize(r);
    });
    lane_pairs.push_back(pair);
  }
  deterministic &= de_equal;

  // ---- Adaptive transient: fixed reference vs embedded-error stepping -----
  // Stiff comparator-style slew fixture: a long flat region (the
  // controller grows to dt_max) ending in a near-instant edge (forced
  // step rejections), then a settling tail.  Fixed stepping pays the
  // whole window at the resolution the edge needs; adaptive pays it only
  // around the edge.
  ckt::Circuit stiff;
  const double stiff_tau = 1e-6;
  {
    const auto in = stiff.node("in");
    const auto out = stiff.node("out");
    stiff.add_vsource("V1", in, ckt::kGround,
                      ckt::Waveform::pulse(0.0, 1.0, 50.0 * stiff_tau, 1e-9,
                                           1e-9, 100.0 * stiff_tau,
                                           200.0 * stiff_tau));
    stiff.add_resistor("R1", in, out, 1e3);
    stiff.add_capacitor("C1", out, ckt::kGround, stiff_tau / 1e3);
  }
  const sim::OpResult stiff_op = sim::dc_operating_point(stiff, f.t);
  const sim::MnaLayout stiff_layout(stiff);
  const ckt::NodeId stiff_out = stiff.node("out");

  sim::TranOptions at_fixed;
  at_fixed.tstop = 100.0 * stiff_tau;
  at_fixed.dt = stiff_tau / 10.0;  // 1000 fixed steps
  sim::TranOptions at_adapt = at_fixed;
  at_adapt.mode = sim::TranMode::kAdaptive;

  const sim::TranResult at_f1 =
      sim::transient(stiff, f.t, stiff_op, at_fixed);
  const obs::MetricsSnapshot at_before = obs::Registry::global().snapshot();
  const sim::TranResult at_a1 =
      sim::transient(stiff, f.t, stiff_op, at_adapt);
  const obs::MetricsSnapshot at_after = obs::Registry::global().snapshot();
  const sim::TranResult at_a2 =
      sim::transient(stiff, f.t, stiff_op, at_adapt);
  const bool adaptive_repeat_equal =
      at_f1.ok && at_a1.ok && at_a2.ok && at_a1.time == at_a2.time &&
      at_a1.states == at_a2.states;
  deterministic &= adaptive_repeat_equal;

  auto counter_value = [](const obs::MetricsSnapshot& s, const char* name) {
    const obs::MetricEntry* e = s.find(name);
    return e != nullptr ? e->counter : std::uint64_t{0};
  };
  const std::uint64_t adaptive_rejects =
      counter_value(at_after, "tran.adaptive.rejects") -
      counter_value(at_before, "tran.adaptive.rejects");

  // Waveform-derived metrics through dense output: the two grids differ,
  // the physics may not.
  auto stiff_metrics = [&](const sim::TranResult& tr) {
    std::vector<double> m;
    const auto sl = sim::slew_rate(tr, stiff_layout, stiff_out);
    m.push_back(sl.has_value() ? sl->rising : 0.0);
    m.push_back(tr.voltage_at(stiff_layout, stiff_out, 60.0 * stiff_tau));
    m.push_back(tr.voltage_at(stiff_layout, stiff_out, at_fixed.tstop));
    return m;
  };
  // Accuracy is judged against a converged fine-grid reference (tau/100),
  // not against the coarse fixed run: at tau/10 the fixed grid itself
  // under-resolves the edge, and charging adaptive for disagreeing with
  // an under-resolved answer would reward the wrong engine.
  sim::TranOptions at_ref = at_fixed;
  at_ref.dt = stiff_tau / 100.0;
  const sim::TranResult at_r1 = sim::transient(stiff, f.t, stiff_op, at_ref);
  const std::vector<double> m_ref = stiff_metrics(at_r1);
  const std::vector<double> m_fixed = stiff_metrics(at_f1);
  const std::vector<double> m_adapt = stiff_metrics(at_a1);
  auto max_deviation = [&](const std::vector<double>& m) {
    double worst = 0.0;
    for (std::size_t i = 0; i < m_ref.size(); ++i) {
      const double denom = std::max(std::abs(m_ref[i]), 1e-12);
      worst = std::max(worst, std::abs(m[i] - m_ref[i]) / denom);
    }
    return worst;
  };
  const double max_metric_deviation_rel = max_deviation(m_adapt);
  const double fixed_metric_deviation_rel = max_deviation(m_fixed);
  deterministic &= at_r1.ok;

  const double at_fixed_s = oasys::bench::time_best_of(5, [&] {
    sim::TranResult r = sim::transient(stiff, f.t, stiff_op, at_fixed);
    benchmark::DoNotOptimize(r);
  });
  const double at_adapt_s = oasys::bench::time_best_of(5, [&] {
    sim::TranResult r = sim::transient(stiff, f.t, stiff_op, at_adapt);
    benchmark::DoNotOptimize(r);
  });
  const double step_reduction =
      static_cast<double>(at_f1.time.size() - 1) /
      static_cast<double>(at_a1.time.size() - 1);

  // Metrics block: registry contents of one canonical run of each engine
  // (one DC operating point, one AC sweep, one transient) after a reset,
  // so the record carries solver-effort counts alongside the timings.
  obs::Registry::global().reset();
  {
    sim::OpOptions canon = warm;
    sim::OpResult op = sim::dc_operating_point(f.circuit, f.t, canon, &ws);
    benchmark::DoNotOptimize(op);
    sim::AcResult ac = sim::ac_analysis(f.circuit, f.t, f.op, freqs, 1);
    benchmark::DoNotOptimize(ac);
    sim::TranResult tr = sim::transient(f.circuit, f.t, f.op, to);
    benchmark::DoNotOptimize(tr);
  }
  const std::string metrics =
      obs::metrics_json(obs::Registry::global().snapshot());

  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 2;
  }
  std::fprintf(out,
               "{\"bench\": \"sim_perf\", \"build_type\": \"%s\", "
               "\"hardware_jobs\": %zu, \"matrix_size\": %zu,\n",
               OASYS_BUILD_TYPE, exec::hardware_jobs(), n);
  std::fprintf(out,
               " \"dc_newton\": {\"solves\": %d, \"baseline_seconds\": %.6f, "
               "\"workspace_seconds\": %.6f, \"speedup\": %.3f},\n",
               dc_solves, dc_base_s, dc_ws_s, dc_base_s / dc_ws_s);
  std::fprintf(out,
               " \"ac_sweep\": {\"points\": %zu, \"repeats\": %d, "
               "\"baseline_seconds\": %.6f, \"workspace_seconds\": %.6f, "
               "\"speedup\": %.3f},\n",
               freqs.size(), ac_repeats, ac_base_s, ac_ws_s,
               ac_base_s / ac_ws_s);
  std::fprintf(out,
               " \"transient\": {\"steps\": %zu, \"seconds\": %.6f},\n",
               tr1.time.size() - 1, tran_s);
  std::fprintf(out,
               " \"device_eval\": {\"equivalence\": \"bitwise\", "
               "\"bitwise_equal\": %s,\n",
               de_equal ? "true" : "false");
  std::fprintf(out,
               "  \"dc\": {\"solves\": %d, \"scalar_seconds\": %.6f, "
               "\"batch_seconds\": %.6f, \"speedup\": %.3f},\n",
               dc_solves, de_dc_scalar_s, de_dc_batch_s,
               de_dc_scalar_s / de_dc_batch_s);
  std::fprintf(out,
               "  \"transient\": {\"scalar_seconds\": %.6f, "
               "\"batch_seconds\": %.6f, \"speedup\": %.3f},\n",
               de_tran_scalar_s, de_tran_batch_s,
               de_tran_scalar_s / de_tran_batch_s);
  std::fprintf(out, "  \"ac_sweep\": [");
  for (std::size_t i = 0; i < lane_pairs.size(); ++i) {
    std::fprintf(out,
                 "%s{\"jobs\": %zu, \"scalar_seconds\": %.6f, "
                 "\"batch_seconds\": %.6f, \"speedup\": %.3f}",
                 i == 0 ? "" : ", ", lane_pairs[i].jobs,
                 lane_pairs[i].scalar_s, lane_pairs[i].batch_s,
                 lane_pairs[i].scalar_s / lane_pairs[i].batch_s);
  }
  std::fprintf(out, "]},\n");
  std::fprintf(out,
               " \"adaptive_tran\": {\"tstop\": %.6e, \"dt\": %.6e, "
               "\"rtol\": %.3e, \"atol\": %.3e,\n",
               at_fixed.tstop, at_fixed.dt,
               sim::tran_tolerance_default().rtol,
               sim::tran_tolerance_default().atol);
  std::fprintf(out,
               "  \"reference\": {\"dt\": %.6e, \"steps\": %zu, "
               "\"slew\": %.9e},\n",
               at_ref.dt, at_r1.time.size() - 1, m_ref[0]);
  std::fprintf(out,
               "  \"fixed\": {\"steps\": %zu, \"seconds\": %.6f, "
               "\"slew\": %.9e, \"metric_deviation_rel\": %.6e},\n",
               at_f1.time.size() - 1, at_fixed_s, m_fixed[0],
               fixed_metric_deviation_rel);
  std::fprintf(out,
               "  \"adaptive\": {\"steps\": %zu, \"rejects\": %llu, "
               "\"seconds\": %.6f, \"slew\": %.9e, "
               "\"repeat_bitwise_equal\": %s},\n",
               at_a1.time.size() - 1,
               static_cast<unsigned long long>(adaptive_rejects), at_adapt_s,
               m_adapt[0], adaptive_repeat_equal ? "true" : "false");
  std::fprintf(out,
               "  \"step_reduction\": %.3f, \"speedup\": %.3f, "
               "\"max_metric_deviation_rel\": %.6e},\n",
               step_reduction, at_fixed_s / at_adapt_s,
               max_metric_deviation_rel);
  std::fprintf(out,
               " \"determinism\": {\"dc_bitwise_equal\": %s, "
               "\"ac_bitwise_equal\": %s, \"ac_jobs_invariant\": %s, "
               "\"tran_repeat_equal\": %s, "
               "\"device_eval_bitwise_equal\": %s, "
               "\"adaptive_repeat_equal\": %s},\n",
               dc_equal ? "true" : "false", ac_equal ? "true" : "false",
               ac_jobs_invariant ? "true" : "false",
               tran_equal ? "true" : "false", de_equal ? "true" : "false",
               adaptive_repeat_equal ? "true" : "false");
  std::fprintf(out, " \"metrics\": %s}\n", metrics.c_str());
  std::fclose(out);

  if (!deterministic) {
    std::fprintf(stderr, "FAIL: determinism self-check failed\n");
    return 1;
  }
  std::printf(
      "wrote %s (dc speedup %.2fx, ac speedup %.2fx, batch dc %.2fx, "
      "adaptive tran %.1fx fewer steps)\n",
      path, dc_base_s / dc_ws_s, ac_base_s / ac_ws_s,
      de_dc_scalar_s / de_dc_batch_s, step_reduction);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (!oasys::bench::apply_jobs_flag(argc, argv)) return 2;
  if (const char* path = oasys::bench::parse_json_flag(argc, argv)) {
    return emit_json(path);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
