// Service-layer throughput microbenchmarks (google-benchmark).
//
// Workload shape: a repeated-spec batch — R copies of U unique specs, the
// sweep-server traffic the ROADMAP's heavy-traffic north star describes
// (most requests repeat or nearly repeat a fixed block library).  `--json
// <path>` writes the perf-trajectory record instead: warm-over-cold
// speedup of the result cache, two-pass cache on/off comparison, and the
// dedup join rate, plus an equivalence self-check (service results must be
// bit-for-bit the direct synthesize_opamp_batch results) that fails the
// run loudly while the timings stay informational.  See perf_json.h.
#include <benchmark/benchmark.h>

#include <bit>
#include <cstdio>

#include "obs/export.h"
#include "obs/metrics.h"
#include "service/service.h"
#include "synth/oasys.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"

#include "jobs_flag.h"
#include "perf_json.h"

namespace {

using namespace oasys;

// Copies of each unique spec per batch.  Two is enough to exercise dedup
// joins (every spec's second copy joins the first's in-flight computation)
// without drowning the cold pass's synthesis work in per-request key/copy
// overhead the warm pass pays too: the warm-over-cold ratio is
// 1 + U*synth / (U*kRepeat*(key+copy)), so it *shrinks* as kRepeat grows.
constexpr int kRepeat = 2;

const tech::Technology& tech5() {
  static const tech::Technology t = tech::five_micron();
  return t;
}

// Six distinct keys: the paper's cases plus GBW/gain/slew variants.
std::vector<core::OpAmpSpec> unique_specs() {
  std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  core::OpAmpSpec a2 = synth::spec_case_a();
  a2.name = "A2";
  a2.gbw_min *= 1.25;
  core::OpAmpSpec b2 = synth::spec_case_b();
  b2.name = "B2";
  b2.gain_min_db += 3.0;
  core::OpAmpSpec a3 = synth::spec_case_a();
  a3.name = "A3";
  a3.slew_min *= 1.5;
  specs.push_back(a2);
  specs.push_back(b2);
  specs.push_back(a3);
  return specs;
}

// Interleaved repeats (u0 u1 ... u0 u1 ...): every repeat after the first
// round is either a cache hit or an in-flight join.
std::vector<core::OpAmpSpec> repeated_batch() {
  const std::vector<core::OpAmpSpec> uniq = unique_specs();
  std::vector<core::OpAmpSpec> batch;
  batch.reserve(uniq.size() * kRepeat);
  for (int r = 0; r < kRepeat; ++r) {
    batch.insert(batch.end(), uniq.begin(), uniq.end());
  }
  return batch;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// Bitwise equivalence of the fields downstream consumers read; false means
// the cache/dedup layer changed the numbers.
bool results_equal(const synth::SynthesisResult& a,
                   const synth::SynthesisResult& b) {
  if (a.selection.best != b.selection.best) return false;
  if (a.candidates.size() != b.candidates.size()) return false;
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    const synth::OpAmpDesign& x = a.candidates[i];
    const synth::OpAmpDesign& y = b.candidates[i];
    if (x.feasible != y.feasible || x.style != y.style) return false;
    if (bits(x.predicted.area) != bits(y.predicted.area)) return false;
    if (bits(x.predicted.gbw) != bits(y.predicted.gbw)) return false;
    if (bits(x.predicted.gain_db) != bits(y.predicted.gain_db)) return false;
    if (x.devices.size() != y.devices.size()) return false;
    for (std::size_t d = 0; d < x.devices.size(); ++d) {
      if (bits(x.devices[d].w) != bits(y.devices[d].w)) return false;
      if (bits(x.devices[d].l) != bits(y.devices[d].l)) return false;
    }
  }
  return true;
}

void BM_DirectBatch(benchmark::State& state) {
  const std::vector<core::OpAmpSpec> batch = repeated_batch();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth::synthesize_opamp_batch(tech5(), batch));
  }
}
BENCHMARK(BM_DirectBatch);

void BM_ServiceColdBatch(benchmark::State& state) {
  const std::vector<core::OpAmpSpec> batch = repeated_batch();
  for (auto _ : state) {
    service::SynthesisService svc(tech5());
    benchmark::DoNotOptimize(svc.run_batch(batch));
  }
}
BENCHMARK(BM_ServiceColdBatch);

void BM_ServiceWarmBatch(benchmark::State& state) {
  const std::vector<core::OpAmpSpec> batch = repeated_batch();
  service::SynthesisService svc(tech5());
  svc.run_batch(batch);  // warm the cache once
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.run_batch(batch));
  }
}
BENCHMARK(BM_ServiceWarmBatch);

int emit_json(const char* path) {
  const std::vector<core::OpAmpSpec> batch = repeated_batch();
  const std::size_t unique = unique_specs().size();

  // Reference: the pre-service batch path.
  const std::vector<synth::SynthesisResult> direct =
      synth::synthesize_opamp_batch(tech5(), batch);

  // Equivalence self-check across the cold, dedup-joined, and warm paths.
  // Runs on a freshly reset registry so the record's metrics block shows
  // exactly this cold+warm traffic.
  oasys::obs::Registry::global().reset();
  service::SynthesisService check_svc(tech5());
  const std::vector<synth::SynthesisResult> cold_results =
      check_svc.run_batch(batch);
  const std::vector<synth::SynthesisResult> warm_results =
      check_svc.run_batch(batch);
  bool equivalent = cold_results.size() == direct.size();
  for (std::size_t i = 0; equivalent && i < direct.size(); ++i) {
    equivalent = results_equal(cold_results[i], direct[i]) &&
                 results_equal(warm_results[i], direct[i]);
  }
  const service::ServiceStats check_stats = check_svc.stats();
  const std::string metrics = oasys::obs::metrics_json(
      oasys::obs::Registry::global().snapshot());

  // Cold: fresh service per rep (computes every unique spec, joins the
  // repeats).  Warm: same service re-serving the batch from cache.
  const double cold_seconds = oasys::bench::time_best_of(9, [&] {
    service::SynthesisService svc(tech5());
    benchmark::DoNotOptimize(svc.run_batch(batch));
  });
  service::SynthesisService warm_svc(tech5());
  warm_svc.run_batch(batch);
  const double warm_seconds = oasys::bench::time_best_of(9, [&] {
    benchmark::DoNotOptimize(warm_svc.run_batch(batch));
  });
  const double warm_speedup =
      warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;

  // Two batches through one service, cache on vs off: what the cache buys
  // on traffic that repeats across (not just within) requests.
  const double twopass_cache_on_seconds = oasys::bench::time_best_of(3, [&] {
    service::SynthesisService svc(tech5());
    benchmark::DoNotOptimize(svc.run_batch(batch));
    benchmark::DoNotOptimize(svc.run_batch(batch));
  });
  const double twopass_cache_off_seconds = oasys::bench::time_best_of(3, [&] {
    service::ServiceOptions sopts;
    sopts.cache_enabled = false;
    service::SynthesisService svc(tech5(), {}, sopts);
    benchmark::DoNotOptimize(svc.run_batch(batch));
    benchmark::DoNotOptimize(svc.run_batch(batch));
  });

  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 2;
  }
  std::fprintf(
      out,
      "{\"bench\": \"service_perf\", \"build_type\": \"%s\", "
      "\"hardware_jobs\": %zu,\n"
      " \"unique_specs\": %zu, \"repeat\": %d, \"requests\": %zu,\n"
      " \"cold_seconds\": %.6f, \"warm_seconds\": %.6f, "
      "\"warm_speedup\": %.2f,\n"
      " \"twopass_cache_on_seconds\": %.6f, "
      "\"twopass_cache_off_seconds\": %.6f,\n"
      " \"hits\": %llu, \"misses\": %llu, \"dedup_joins\": %llu, "
      "\"dedup_join_rate\": %.4f,\n"
      " \"metrics\": %s,\n"
      " \"deterministic\": %s}\n",
      OASYS_BUILD_TYPE, exec::hardware_jobs(), unique, kRepeat,
      batch.size(), cold_seconds, warm_seconds, warm_speedup,
      twopass_cache_on_seconds, twopass_cache_off_seconds,
      static_cast<unsigned long long>(check_stats.hits),
      static_cast<unsigned long long>(check_stats.misses),
      static_cast<unsigned long long>(check_stats.dedup_joins),
      static_cast<double>(check_stats.dedup_joins) /
          static_cast<double>(check_stats.requests),
      metrics.c_str(), equivalent ? "true" : "false");
  std::fclose(out);
  if (!equivalent) {
    std::fprintf(stderr,
                 "FAIL: service results diverged from direct synthesis\n");
    return 1;
  }
  std::printf("wrote %s (warm speedup %.1fx)\n", path, warm_speedup);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (!oasys::bench::apply_jobs_flag(argc, argv)) return 2;
  if (const char* path = oasys::bench::parse_json_flag(argc, argv)) {
    return emit_json(path);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
