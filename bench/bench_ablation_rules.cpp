// Ablation: plan-patching rules on vs off.
//
// The paper's planning mechanism leans on rules that patch failing plans
// (Sec. 3.3, Fig. 3).  This bench runs a grid of specs of increasing
// difficulty through both op-amp plans with rules enabled and disabled and
// reports success rates — quantifying how much of the design space only
// the patching mechanism reaches.
#include <cstdio>
#include <vector>

#include "synth/oasys.h"
#include "tech/builtin.h"
#include "util/table.h"
#include "util/text.h"
#include "util/units.h"

#include "jobs_flag.h"

int main(int argc, char** argv) {
  if (!oasys::bench::apply_jobs_flag(argc, argv)) return 2;
  using namespace oasys;
  using util::format;
  const tech::Technology t = tech::five_micron();

  struct Bucket {
    const char* label;
    double gain_lo, gain_hi;
    int total = 0;
    int ok_with_rules = 0;
    int ok_without_rules = 0;
    int rule_firings = 0;
  };
  std::vector<Bucket> buckets = {
      {"easy (40-60 dB)", 40.0, 60.0},
      {"moderate (65-85 dB)", 65.0, 85.0},
      {"aggressive (90-105 dB)", 90.0, 105.0},
  };

  for (Bucket& b : buckets) {
    for (double gain = b.gain_lo; gain <= b.gain_hi + 1e-9; gain += 5.0) {
      for (const double slew_vus : {1.0, 5.0}) {
        for (const double cl_pf : {5.0, 10.0}) {
          core::OpAmpSpec spec;
          spec.name = format("g%.0f", gain);
          spec.gain_min_db = gain;
          spec.gbw_min = util::mhz(1.0);
          spec.pm_min_deg = 45.0;
          spec.slew_min = util::v_per_us(slew_vus);
          spec.cload = util::pf(cl_pf);
          spec.icmr_lo = -1.0;
          spec.icmr_hi = 1.0;
          ++b.total;

          synth::SynthOptions with;
          const synth::SynthesisResult r_with =
              synth::synthesize_opamp(t, spec, with);
          if (r_with.success()) {
            ++b.ok_with_rules;
            b.rule_firings += r_with.best()->trace.rules_fired;
          }

          synth::SynthOptions without;
          without.rules_enabled = false;
          if (synth::synthesize_opamp(t, spec, without).success()) {
            ++b.ok_without_rules;
          }
        }
      }
    }
  }

  std::puts("=== Ablation: plan-patching rules enabled vs disabled ===\n");
  util::Table table({"spec difficulty", "specs", "success w/ rules",
                     "success w/o rules", "avg rule firings"});
  for (const Bucket& b : buckets) {
    table.add_row(
        {b.label, format("%d", b.total),
         format("%d (%.0f%%)", b.ok_with_rules,
                100.0 * b.ok_with_rules / b.total),
         format("%d (%.0f%%)", b.ok_without_rules,
                100.0 * b.ok_without_rules / b.total),
         format("%.1f", b.ok_with_rules
                            ? static_cast<double>(b.rule_firings) /
                                  b.ok_with_rules
                            : 0.0)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nexpected shape: parity on easy specs (the nominal plan "
            "suffices); widening gap as specs demand the structural "
            "patches (cascoding, level shifting) only rules perform.");
  return 0;
}
