// Figure 5 reproduction: synthesized circuit schematics for test cases
// A, B, C — rendered as sized device tables plus SPICE decks (our textual
// equivalent of the paper's schematics).
#include <cstdio>

#include "netlist/spice_writer.h"
#include "synth/netlist_builder.h"
#include "synth/oasys.h"
#include "synth/report.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"

#include "jobs_flag.h"

int main(int argc, char** argv) {
  if (!oasys::bench::apply_jobs_flag(argc, argv)) return 2;
  using namespace oasys;
  const tech::Technology t = tech::five_micron();

  std::puts("=== Figure 5: synthesized circuit schematics for the three "
            "test cases ===");
  for (const core::OpAmpSpec& spec : synth::paper_test_cases()) {
    const synth::SynthesisResult r = synth::synthesize_opamp(t, spec);
    std::printf("\n----- case %s -----\n", spec.name.c_str());
    if (!r.success()) {
      std::puts("no feasible design");
      continue;
    }
    const synth::OpAmpDesign& d = *r.best();
    std::fputs(synth::design_summary(d).c_str(), stdout);
    std::fputs(synth::device_table(d).c_str(), stdout);

    ckt::SpiceWriterOptions wo;
    wo.title = "OASYS case " + spec.name + " (" + d.style_name() + ")";
    const ckt::Circuit c = synth::build_standalone_opamp(d, t);
    std::puts("\nSPICE deck:");
    std::fputs(ckt::to_spice_deck(c, t, wo).c_str(), stdout);
  }
  return 0;
}
