// Table 1 reproduction: the process parameters OASYS reads.
//
// Prints the built-in 5 um technology (and, with an argument, any tech
// file) in the paper's Table-1 layout, then round-trips it through the
// parser to demonstrate the file interface.
#include <cstdio>

#include "tech/builtin.h"
#include "tech/tech_parser.h"
#include "util/table.h"
#include "util/text.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace oasys;
  tech::Technology t = tech::five_micron();
  if (argc > 1) {
    const tech::ParseResult r = tech::load_tech_file(argv[1]);
    if (!r.ok()) {
      std::fprintf(stderr, "%s", r.log.to_string().c_str());
      return 1;
    }
    t = r.technology;
  }

  std::puts("=== Table 1: OASYS process parameters ===\n");
  util::Table table({"#", "parameter", "nmos", "pmos", "unit"});
  using util::format;
  const auto& n = t.nmos;
  const auto& p = t.pmos;
  table.add_row({"1", "Threshold voltage", format("%.2f", n.vt0),
                 format("%.2f", p.vt0), "V"});
  table.add_row({"2", "K' (uCox)", format("%.1f", n.kp * 1e6),
                 format("%.1f", p.kp * 1e6), "uA/V^2"});
  table.add_row({"3", "Process min. width",
                 format("%.1f", util::in_um(t.wmin)), "", "um"});
  table.add_row({"4", "Built-in voltage", format("%.2f", n.pb),
                 format("%.2f", p.pb), "V"});
  table.add_row({"5", "Min. drain width",
                 format("%.1f", util::in_um(t.drain_ext)), "", "um"});
  table.add_row({"6", "Supply voltage",
                 format("%+.1f / %+.1f", t.vdd, t.vss), "", "V"});
  table.add_row({"7", "Oxide thickness", format("%.0f", t.tox / 1e-10),
                 "", "Angstrom"});
  table.add_row({"8", "Mobility", format("%.0f", n.mobility / 1e-4),
                 format("%.0f", p.mobility / 1e-4), "cm^2/V-s"});
  table.add_row({"9", "Cox",
                 format("%.3f", t.cox * 1e-3), "", "fF/um^2"});
  table.add_row({"10", "Cgd (overlap)", format("%.2f", n.cgdo * 1e9),
                 format("%.2f", p.cgdo * 1e9), "fF/um"});
  table.add_row({"11", "Cdb: Cj (area)",
                 format("%.2f", n.cj * 1e-3), format("%.2f", p.cj * 1e-3),
                 "fF/um^2"});
  table.add_row({"12", "Cjsw (sidewall)", format("%.2f", n.cjsw * 1e9),
                 format("%.2f", p.cjsw * 1e9), "fF/um"});
  table.add_row({"13", "Junction grading (MJ)", format("%.2f", n.mj),
                 format("%.2f", p.mj), ""});
  table.add_row({"14", "lambda(L) = lambda_l/L",
                 format("%.3f", util::in_um(n.lambda_l)),
                 format("%.3f", util::in_um(p.lambda_l)), "um/V"});
  std::fputs(table.to_string().c_str(), stdout);

  std::puts("\n=== technology-file round trip ===\n");
  const std::string text = tech::to_tech_text(t);
  const tech::ParseResult round = tech::parse_tech(text);
  std::printf("serialize -> parse: %s\n",
              round.ok() ? "OK (lossless)" : "FAILED");
  std::printf("process '%s': validation %s\n", t.name.c_str(),
              t.validate().has_errors() ? "FAILED" : "clean");
  return round.ok() ? 0 : 1;
}
