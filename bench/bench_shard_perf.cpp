// Cross-process sharded-serving benchmarks (google-benchmark).
//
// Workload shape: the same repeated-spec sweep traffic as
// bench_service_perf, pushed through shard::run_sharded_batch at worker
// counts 1/2/4.  Workers are real processes (`oasys shard-worker`
// spawned fork+exec), so the timings include process spawn, wire
// serialization, and the coordinator's merge — the honest cost of the
// process boundary, not just the synthesis math.
//
// `--json <path>` writes the perf-trajectory record instead: per-worker-
// count wall times, the coordinator overhead (1-worker shard vs a direct
// in-process SynthesisService on identical traffic), the 4-over-1
// process-scaling ratio, and the resident-pool comparison — a serve::
// Server daemon held on a background thread answering three consecutive
// client batches, recording the cold (first, pool spin-up + all misses)
// and warm (later, resident workers + shared tier) request times and the
// daemon-vs-spawn speedup over a per-batch `oasys shard` fleet.  The
// embedded equivalence self-check re-renders every shard AND every
// daemon outcome through synth::result_json and requires it
// byte-identical to the direct service result at every worker count —
// the record fails loudly (non-zero exit) on any divergence while the
// timings stay informational.  See perf_json.h.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/server.h"
#include "service/service.h"
#include "shard/coordinator.h"
#include "synth/oasys.h"
#include "synth/result_json.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"

#include "perf_json.h"

// Path to the oasys CLI, stamped by bench/CMakeLists.txt; the coordinator
// execs it as `oasys shard-worker`.
#ifndef OASYS_CLI_PATH
#error "bench_shard_perf requires OASYS_CLI_PATH (see bench/CMakeLists.txt)"
#endif

namespace {

using namespace oasys;

constexpr int kRepeat = 2;

const tech::Technology& tech5() {
  static const tech::Technology t = tech::five_micron();
  return t;
}

// Twelve distinct keys (paper corpus plus perturbed variants), so every
// worker count in {1,2,4} has several specs per shard and the repeats
// exercise each worker's private dedup/cache path.
std::vector<core::OpAmpSpec> unique_specs() {
  std::vector<core::OpAmpSpec> specs = synth::paper_test_cases();
  const std::size_t base = specs.size();
  for (std::size_t v = 1; v <= 3; ++v) {
    for (std::size_t i = 0; i < base; ++i) {
      core::OpAmpSpec s = specs[i];
      s.name += "-v" + std::to_string(v);
      s.gbw_min *= 1.0 + 0.01 * static_cast<double>(v);
      specs.push_back(s);
    }
  }
  return specs;
}

std::vector<core::OpAmpSpec> repeated_batch() {
  const std::vector<core::OpAmpSpec> uniq = unique_specs();
  std::vector<core::OpAmpSpec> batch;
  batch.reserve(uniq.size() * kRepeat);
  for (int r = 0; r < kRepeat; ++r) {
    batch.insert(batch.end(), uniq.begin(), uniq.end());
  }
  return batch;
}

// Workers synthesize serially; the parallelism under measurement is the
// process fan-out, not the executor inside each worker.
synth::SynthOptions serial_opts() {
  synth::SynthOptions o;
  o.jobs = 1;
  return o;
}

shard::ShardOptions shard_opts(std::size_t workers) {
  shard::ShardOptions o;
  o.workers = workers;
  o.worker_command = OASYS_CLI_PATH;
  return o;
}

// Resident daemon pool for the serve-mode measurements: a Server on a
// background thread, clients connecting per batch.  The first connect
// races the daemon's bind, so it retries.
struct ResidentPool {
  serve::Server server;
  std::thread th;

  explicit ResidentPool(std::size_t workers)
      : server(tech5(), serial_opts(), serve_options(workers)) {
    th = std::thread([this] { server.run(); });
  }
  ~ResidentPool() {
    server.request_stop();
    if (th.joinable()) th.join();
    ::unlink(server.options().socket_path.c_str());
  }

  static serve::ServeOptions serve_options(std::size_t workers) {
    static int counter = 0;
    serve::ServeOptions o;
    o.socket_path =
        "/tmp/oasys-bench-serve-" + std::to_string(::getpid()) + "-" +
        std::to_string(counter++) + ".sock";
    o.workers = workers;
    o.worker_command = OASYS_CLI_PATH;
    return o;
  }

  serve::ConnectReport batch(const std::vector<core::OpAmpSpec>& specs) {
    for (int attempt = 0;; ++attempt) {
      try {
        return serve::run_connected_batch(server.options().socket_path,
                                          tech5(), serial_opts(), specs);
      } catch (const std::runtime_error& e) {
        if (attempt >= 1000 || std::string(e.what()).find(
                                   "cannot connect") == std::string::npos) {
          throw;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
  }
};

void BM_ShardBatch(benchmark::State& state) {
  const std::vector<core::OpAmpSpec> batch = repeated_batch();
  const shard::ShardOptions opts =
      shard_opts(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        shard::run_sharded_batch(tech5(), serial_opts(), batch, opts));
  }
}
BENCHMARK(BM_ShardBatch)->Arg(1)->Arg(2)->Arg(4);

// Same traffic against a resident daemon pool: the fleet is spawned once
// outside the timing loop, so iterations measure the steady-state cost a
// long-lived `oasys serve` answers requests at (wire round trip + shared
// cache) rather than per-batch process spawn.
void BM_ResidentPoolBatch(benchmark::State& state) {
  const std::vector<core::OpAmpSpec> batch = repeated_batch();
  ResidentPool pool(static_cast<std::size_t>(state.range(0)));
  benchmark::DoNotOptimize(pool.batch(batch));  // spin-up + cold caches
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.batch(batch));
  }
}
BENCHMARK(BM_ResidentPoolBatch)->Arg(1)->Arg(4);

void BM_DirectServiceBatch(benchmark::State& state) {
  const std::vector<core::OpAmpSpec> batch = repeated_batch();
  for (auto _ : state) {
    service::SynthesisService svc(tech5(), serial_opts());
    benchmark::DoNotOptimize(svc.run_batch(batch));
  }
}
BENCHMARK(BM_DirectServiceBatch);

int emit_json(const char* path) {
  const std::vector<core::OpAmpSpec> batch = repeated_batch();
  const std::size_t unique = unique_specs().size();
  const synth::SynthOptions sopts = serial_opts();

  // Reference: one in-process service over the same traffic.
  service::SynthesisService ref_svc(tech5(), sopts);
  const std::vector<service::BatchOutcome> ref =
      ref_svc.run_batch_outcomes(batch);
  std::vector<std::string> expected;
  expected.reserve(ref.size());
  for (const service::BatchOutcome& o : ref) {
    expected.push_back(o.ok() ? synth::result_json(o.result) : o.error);
  }

  // Equivalence self-check: every outcome at every worker count must
  // render to the reference bytes, and the infrastructure must be clean.
  bool equivalent = true;
  const std::size_t worker_counts[] = {1, 2, 4};
  double seconds[3] = {0.0, 0.0, 0.0};
  for (std::size_t wi = 0; wi < 3; ++wi) {
    const shard::ShardReport report = shard::run_sharded_batch(
        tech5(), sopts, batch, shard_opts(worker_counts[wi]));
    equivalent = equivalent && report.infra_ok() &&
                 report.outcomes.size() == expected.size();
    for (std::size_t i = 0; equivalent && i < expected.size(); ++i) {
      const shard::ShardOutcome& o = report.outcomes[i];
      equivalent = o.ok() && synth::result_json(o.result) == expected[i];
    }
    seconds[wi] = oasys::bench::time_best_of(3, [&] {
      benchmark::DoNotOptimize(shard::run_sharded_batch(
          tech5(), sopts, batch, shard_opts(worker_counts[wi])));
    });
  }

  const double direct_seconds = oasys::bench::time_best_of(3, [&] {
    service::SynthesisService svc(tech5(), sopts);
    benchmark::DoNotOptimize(svc.run_batch(batch));
  });

  // Resident-pool mode: one daemon per worker count, three consecutive
  // client batches.  The first request pays pool spin-up and cold caches;
  // the later ones are the daemon's steady state (resident workers plus
  // the coordinator's shared tier).  Every outcome of every request is
  // held to the same byte-equivalence bar as the spawn-per-batch path.
  const std::size_t serve_counts[] = {1, 4};
  double serve_cold[2] = {0.0, 0.0};
  double serve_warm[2] = {0.0, 0.0};
  for (std::size_t si = 0; si < 2; ++si) {
    ResidentPool pool(serve_counts[si]);
    for (int request = 0; request < 3; ++request) {
      const auto t0 = std::chrono::steady_clock::now();
      const serve::ConnectReport report = pool.batch(batch);
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      if (request == 0) {
        serve_cold[si] = elapsed;
        serve_warm[si] = 0.0;
      } else if (serve_warm[si] == 0.0 || elapsed < serve_warm[si]) {
        serve_warm[si] = elapsed;
      }
      equivalent =
          equivalent && report.outcomes.size() == expected.size();
      for (std::size_t i = 0; equivalent && i < expected.size(); ++i) {
        const service::BatchOutcome& o = report.outcomes[i];
        equivalent = o.ok() && synth::result_json(o.result) == expected[i];
      }
    }
  }

  const double overhead =
      direct_seconds > 0.0 ? seconds[0] / direct_seconds : 0.0;
  const double scaling = seconds[2] > 0.0 ? seconds[0] / seconds[2] : 0.0;
  // Spawn-per-batch w4 vs a warm resident w4 pool on identical traffic.
  const double daemon_speedup =
      serve_warm[1] > 0.0 ? seconds[2] / serve_warm[1] : 0.0;

  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 2;
  }
  std::fprintf(
      out,
      "{\"bench\": \"shard_perf\", \"build_type\": \"%s\",\n"
      " \"unique_specs\": %zu, \"repeat\": %d, \"requests\": %zu,\n"
      " \"direct_service_seconds\": %.6f,\n"
      " \"shard_w1_seconds\": %.6f, \"shard_w2_seconds\": %.6f, "
      "\"shard_w4_seconds\": %.6f,\n"
      " \"serve_w1_cold_seconds\": %.6f, \"serve_w1_warm_seconds\": %.6f,\n"
      " \"serve_w4_cold_seconds\": %.6f, \"serve_w4_warm_seconds\": %.6f,\n"
      " \"coordinator_overhead_w1\": %.2f, \"scaling_w4_over_w1\": %.2f,\n"
      " \"daemon_speedup_w4\": %.2f,\n"
      " \"equivalent\": %s}\n",
      OASYS_BUILD_TYPE, unique, kRepeat, batch.size(), direct_seconds,
      seconds[0], seconds[1], seconds[2], serve_cold[0], serve_warm[0],
      serve_cold[1], serve_warm[1], overhead, scaling, daemon_speedup,
      equivalent ? "true" : "false");
  std::fclose(out);
  if (!equivalent) {
    std::fprintf(stderr,
                 "FAIL: shard or daemon outcomes diverged from the direct "
                 "service\n");
    return 1;
  }
  std::printf(
      "wrote %s (w1 %.3fs, w4 %.3fs, scaling %.2fx, daemon warm w4 %.3fs, "
      "speedup %.2fx)\n",
      path, seconds[0], seconds[2], scaling, serve_warm[1], daemon_speedup);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (const char* path = oasys::bench::parse_json_flag(argc, argv)) {
    return emit_json(path);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
