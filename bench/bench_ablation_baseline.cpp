// Ablation: knowledge-based synthesis vs flat random-search sizing.
//
// OASYS reaches a feasible sizing in one plan execution; the baseline
// samples the same design space blindly.  Reports, per paper test case:
// success, design-evaluation counts, and wall time.
#include <chrono>
#include <cstdio>

#include "baseline/random_sizer.h"
#include "synth/oasys.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"
#include "util/table.h"
#include "util/text.h"

#include "jobs_flag.h"

int main(int argc, char** argv) {
  if (!oasys::bench::apply_jobs_flag(argc, argv)) return 2;
  using namespace oasys;
  using Clock = std::chrono::steady_clock;
  using util::format;
  const tech::Technology t = tech::five_micron();

  std::puts("=== Ablation: OASYS plans vs flat random search (same "
            "topology family, same equations) ===\n");
  util::Table table({"case", "OASYS", "OASYS ms", "search", "evaluations",
                     "best unmet axes", "search ms"});
  for (const core::OpAmpSpec& spec : synth::paper_test_cases()) {
    const auto t0 = Clock::now();
    const synth::SynthesisResult r = synth::synthesize_opamp(t, spec);
    const auto t1 = Clock::now();

    baseline::BaselineOptions bo;
    bo.seed = 12345;
    bo.max_evaluations = 50000;
    const baseline::BaselineResult b =
        baseline::random_search_two_stage(t, spec, bo);
    const auto t2 = Clock::now();

    auto ms = [](auto a, auto bb) {
      return std::chrono::duration<double, std::milli>(bb - a).count();
    };
    table.add_row(
        {spec.name, r.success() ? "feasible" : "infeasible",
         format("%.1f", ms(t0, t1)),
         b.success ? "feasible" : "infeasible", format("%d", b.evaluations),
         format("%d", b.best_violations), format("%.1f", ms(t1, t2))});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nexpected shape: OASYS solves every case in milliseconds "
            "with one plan execution; random search needs orders of "
            "magnitude more evaluations on easy specs and fails outright "
            "on the aggressive ones (its topology family lacks the "
            "cascoding/level-shifting moves the rules make).");
  return 0;
}
