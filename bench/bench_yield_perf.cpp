// Yield-analysis benchmarks (google-benchmark).
//
// Workload shape: the "millions of users" traffic the ROADMAP predicts —
// thousands of cheap correlated mismatch samples per expensive synthesis.
// BM_YieldAnalysis measures samples/sec for one spec's Monte-Carlo sweep
// at jobs 1/2/4 (the fan-out is across samples, through the batched
// device-eval + SimWorkspace hot path); BM_MixedBatch measures a mixed
// synth/yield batch through the same yield::YieldService the shard
// workers run.
//
// `--json <path>` writes the perf-trajectory record instead: per-jobs
// samples/sec, shard wall times at worker counts 1/2/4, the resident-
// daemon round trip, and a mixed-traffic measurement.  The embedded
// determinism self-check re-renders every yield result through
// yield::yield_result_json and requires it byte-identical to a jobs=1
// local reference — across jobs 1/2/4, shard workers 1/2/4, and daemon
// vs. local — failing loudly (non-zero exit) on any divergence while the
// timings stay informational.  See perf_json.h.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/server.h"
#include "shard/coordinator.h"
#include "synth/oasys.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"
#include "yield/service.h"
#include "yield/yield.h"

#include "perf_json.h"

// Path to the oasys CLI, stamped by bench/CMakeLists.txt; the coordinator
// execs it as `oasys shard-worker`.
#ifndef OASYS_CLI_PATH
#error "bench_yield_perf requires OASYS_CLI_PATH (see bench/CMakeLists.txt)"
#endif

namespace {

using namespace oasys;

constexpr int kSamples = 64;
constexpr std::uint64_t kSeed = 1;

const tech::Technology& tech5() {
  static const tech::Technology t = tech::five_micron();
  return t;
}

// Workers and the local reference both synthesize serially; the
// parallelism under measurement is the per-sample fan-out (and, for
// shard, the process fan-out).
synth::SynthOptions serial_opts() {
  synth::SynthOptions o;
  o.jobs = 1;
  return o;
}

yield::YieldParams params(std::size_t jobs) {
  yield::YieldParams p;
  p.samples = kSamples;
  p.seed = kSeed;
  p.jobs = jobs;
  return p;
}

// One yield request per paper test case.
std::vector<yield::Request> yield_batch() {
  std::vector<yield::Request> requests;
  for (const core::OpAmpSpec& spec : synth::paper_test_cases()) {
    yield::Request r;
    r.spec = spec;
    r.is_yield = true;
    r.params = params(1);
    requests.push_back(std::move(r));
  }
  return requests;
}

// Mixed traffic: for each paper case, one plain synthesis and one yield
// analysis of the same spec (they co-locate on one shard by design).
std::vector<yield::Request> mixed_batch() {
  std::vector<yield::Request> requests;
  for (const core::OpAmpSpec& spec : synth::paper_test_cases()) {
    yield::Request synth_req;
    synth_req.spec = spec;
    requests.push_back(synth_req);
    yield::Request yield_req;
    yield_req.spec = spec;
    yield_req.is_yield = true;
    yield_req.params = params(1);
    requests.push_back(std::move(yield_req));
  }
  return requests;
}

shard::ShardOptions shard_opts(std::size_t workers) {
  shard::ShardOptions o;
  o.workers = workers;
  o.worker_command = OASYS_CLI_PATH;
  return o;
}

// Resident daemon pool (mirrors bench_shard_perf::ResidentPool).  The
// first connect races the daemon's bind, so it retries.
struct ResidentPool {
  serve::Server server;
  std::thread th;

  explicit ResidentPool(std::size_t workers)
      : server(tech5(), serial_opts(), serve_options(workers)) {
    th = std::thread([this] { server.run(); });
  }
  ~ResidentPool() {
    server.request_stop();
    if (th.joinable()) th.join();
    ::unlink(server.options().socket_path.c_str());
  }

  static serve::ServeOptions serve_options(std::size_t workers) {
    static int counter = 0;
    serve::ServeOptions o;
    o.socket_path =
        "/tmp/oasys-bench-yield-" + std::to_string(::getpid()) + "-" +
        std::to_string(counter++) + ".sock";
    o.workers = workers;
    o.worker_command = OASYS_CLI_PATH;
    return o;
  }

  serve::MixedConnectReport run(const std::vector<yield::Request>& reqs) {
    for (int attempt = 0;; ++attempt) {
      try {
        return serve::run_connected_mixed(server.options().socket_path,
                                          tech5(), serial_opts(), reqs);
      } catch (const std::runtime_error& e) {
        if (attempt >= 1000 || std::string(e.what()).find(
                                   "cannot connect") == std::string::npos) {
          throw;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
  }
};

void BM_YieldAnalysis(benchmark::State& state) {
  const core::OpAmpSpec spec = synth::paper_test_cases()[0];
  const synth::SynthesisResult synthesis =
      synth::synthesize_opamp(tech5(), spec, serial_opts());
  const yield::YieldParams p =
      params(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(yield::analyze_yield(tech5(), synthesis, p));
  }
  state.SetItemsProcessed(state.iterations() * kSamples);
}
BENCHMARK(BM_YieldAnalysis)->Arg(1)->Arg(2)->Arg(4);

void BM_MixedBatch(benchmark::State& state) {
  const std::vector<yield::Request> batch = mixed_batch();
  for (auto _ : state) {
    yield::YieldService svc(tech5(), serial_opts());
    benchmark::DoNotOptimize(svc.run_mixed(batch));
  }
}
BENCHMARK(BM_MixedBatch);

int emit_json(const char* path) {
  const std::vector<yield::Request> batch = yield_batch();
  const synth::SynthOptions sopts = serial_opts();

  // Reference: jobs=1 local analyses, rendered to canonical JSON bytes.
  std::vector<std::string> expected;
  for (const yield::Request& r : batch) {
    expected.push_back(yield::yield_result_json(
        yield::run_yield(tech5(), r.spec, r.params, sopts)));
  }

  bool deterministic = true;

  // Jobs scaling: the same analyses at jobs 1/2/4 must render to the
  // reference bytes.  Timings run analyze_yield on pre-synthesized
  // designs so samples/sec reflects the Monte-Carlo fan-out, not the
  // (serial, shared) synthesis in front of it.
  std::vector<synth::SynthesisResult> syntheses;
  for (const yield::Request& r : batch) {
    syntheses.push_back(synth::synthesize_opamp(tech5(), r.spec, sopts));
  }
  const std::size_t jobs_counts[] = {1, 2, 4};
  double jobs_seconds[3] = {0.0, 0.0, 0.0};
  for (std::size_t ji = 0; ji < 3; ++ji) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const yield::YieldResult r = yield::run_yield(
          tech5(), batch[i].spec, params(jobs_counts[ji]), sopts);
      deterministic =
          deterministic && yield::yield_result_json(r) == expected[i];
    }
    jobs_seconds[ji] = oasys::bench::time_best_of(3, [&] {
      for (const synth::SynthesisResult& s : syntheses) {
        benchmark::DoNotOptimize(
            yield::analyze_yield(tech5(), s, params(jobs_counts[ji])));
      }
    });
  }
  const double total_samples =
      static_cast<double>(kSamples) * static_cast<double>(batch.size());

  // Shard: the same yield requests across real worker processes at 1/2/4
  // workers, each outcome held to the reference bytes.
  const std::size_t worker_counts[] = {1, 2, 4};
  double shard_seconds[3] = {0.0, 0.0, 0.0};
  for (std::size_t wi = 0; wi < 3; ++wi) {
    const shard::ShardReport report = shard::run_sharded_requests(
        tech5(), sopts, batch, shard_opts(worker_counts[wi]));
    deterministic = deterministic && report.infra_ok() &&
                    report.outcomes.size() == expected.size();
    for (std::size_t i = 0; deterministic && i < expected.size(); ++i) {
      const shard::ShardOutcome& o = report.outcomes[i];
      deterministic = o.ok() && o.is_yield &&
                      yield::yield_result_json(o.yield) == expected[i];
    }
    shard_seconds[wi] = oasys::bench::time_best_of(2, [&] {
      benchmark::DoNotOptimize(shard::run_sharded_requests(
          tech5(), sopts, batch, shard_opts(worker_counts[wi])));
    });
  }

  // Daemon: the same requests through a resident pool; the second run is
  // the warm (shared-cache) round trip.
  double serve_cold = 0.0;
  double serve_warm = 0.0;
  {
    ResidentPool pool(2);
    for (int request = 0; request < 3; ++request) {
      const auto t0 = std::chrono::steady_clock::now();
      const serve::MixedConnectReport report = pool.run(batch);
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      if (request == 0) {
        serve_cold = elapsed;
      } else if (serve_warm == 0.0 || elapsed < serve_warm) {
        serve_warm = elapsed;
      }
      deterministic =
          deterministic && report.outcomes.size() == expected.size();
      for (std::size_t i = 0; deterministic && i < expected.size(); ++i) {
        const yield::Outcome& o = report.outcomes[i];
        deterministic = o.ok() && o.is_yield &&
                        yield::yield_result_json(o.yield) == expected[i];
      }
    }
  }

  // Mixed traffic through the local YieldService (what one shard worker
  // actually runs).
  const std::vector<yield::Request> mixed = mixed_batch();
  const double mixed_seconds = oasys::bench::time_best_of(3, [&] {
    yield::YieldService svc(tech5(), sopts);
    benchmark::DoNotOptimize(svc.run_mixed(mixed));
  });

  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 2;
  }
  std::fprintf(
      out,
      "{\"bench\": \"yield_perf\", \"build_type\": \"%s\",\n"
      " \"specs\": %zu, \"samples_per_spec\": %d,\n"
      " \"jobs1_seconds\": %.6f, \"jobs2_seconds\": %.6f, "
      "\"jobs4_seconds\": %.6f,\n"
      " \"jobs1_samples_per_sec\": %.1f, \"jobs2_samples_per_sec\": %.1f, "
      "\"jobs4_samples_per_sec\": %.1f,\n"
      " \"shard_w1_seconds\": %.6f, \"shard_w2_seconds\": %.6f, "
      "\"shard_w4_seconds\": %.6f,\n"
      " \"serve_cold_seconds\": %.6f, \"serve_warm_seconds\": %.6f,\n"
      " \"mixed_batch_seconds\": %.6f,\n"
      " \"deterministic\": %s}\n",
      OASYS_BUILD_TYPE, batch.size(), kSamples, jobs_seconds[0],
      jobs_seconds[1], jobs_seconds[2], total_samples / jobs_seconds[0],
      total_samples / jobs_seconds[1], total_samples / jobs_seconds[2],
      shard_seconds[0], shard_seconds[1], shard_seconds[2], serve_cold,
      serve_warm, mixed_seconds, deterministic ? "true" : "false");
  std::fclose(out);
  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: yield results diverged across jobs, shard worker "
                 "counts, or daemon vs. local\n");
    return 1;
  }
  std::printf(
      "wrote %s (jobs1 %.0f samples/s, jobs4 %.0f samples/s, shard w4 "
      "%.3fs, serve warm %.3fs)\n",
      path, total_samples / jobs_seconds[0],
      total_samples / jobs_seconds[2], shard_seconds[2], serve_warm);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (const char* path = oasys::bench::parse_json_flag(argc, argv)) {
    return emit_json(path);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
