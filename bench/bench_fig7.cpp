// Figure 7 reproduction: area versus achievable gain, for the one-stage
// and two-stage styles, at 5 pF and 20 pF loads, with topology-change
// points marked.
//
// Shape to check against the paper: one-stage designs are clearly smaller
// but truncate at lower gain; two-stage designs extend to ~100+ dB;
// automatic topology changes appear along increasing gain; the heavier
// load costs area and caps the one-stage style earlier.
#include <cstdio>

#include "synth/oasys.h"
#include "synth/test_cases.h"
#include "tech/builtin.h"
#include "util/table.h"
#include "util/text.h"
#include "util/units.h"

#include "jobs_flag.h"

int main(int argc, char** argv) {
  if (!oasys::bench::apply_jobs_flag(argc, argv)) return 2;
  using namespace oasys;
  using util::format;
  const tech::Technology t = tech::five_micron();

  std::puts("=== Figure 7: area vs achievable gain (continuous parameter "
            "variation) ===");
  for (const double cl_pf : {5.0, 20.0}) {
    for (const bool two_stage : {false, true}) {
      std::printf("\n--- %s designs (%.0f pF load) ---\n",
                  two_stage ? "2-stage" : "1-stage", cl_pf);
      util::Table table(
          {"gain spec (dB)", "area (um^2)", "configuration", "note"});
      std::string prev_cfg;
      for (double gain = 30.0; gain <= 110.0; gain += 5.0) {
        // Case-A-like baseline spec with the gain axis swept.
        core::OpAmpSpec spec;
        spec.name = format("fig7-%.0f", gain);
        spec.gain_min_db = gain;
        spec.gbw_min = util::mhz(1.0);
        spec.pm_min_deg = 45.0;
        spec.slew_min = util::v_per_us(1.0);
        spec.cload = util::pf(cl_pf);
        spec.icmr_lo = -1.0;
        spec.icmr_hi = 1.0;

        const synth::OpAmpDesign d =
            two_stage ? synth::design_two_stage(t, spec)
                      : synth::design_one_stage_ota(t, spec);
        if (!d.feasible) {
          table.add_row({format("%.0f", gain), "-", "(unachievable)", ""});
          break;  // gain axis truncates here, as in the paper
        }
        std::string note;
        const std::string cfg = d.style_name();
        if (!prev_cfg.empty() && cfg != prev_cfg) {
          note = "<- topology change";
        }
        prev_cfg = cfg;
        table.add_row({format("%.0f", gain),
                       format("%.0f", util::in_um2(d.predicted.area)), cfg,
                       note});
      }
      std::fputs(table.to_string().c_str(), stdout);
    }
  }
  std::puts("\npaper shape: 1-stage curves sit lower in area and stop at "
            "lower gain; 2-stage curves extend to ~110 dB; topology "
            "changes appear as gain increases; the 20 pF load raises area "
            "and lowers the 1-stage ceiling.");
  return 0;
}
